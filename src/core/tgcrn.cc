// Copyright 2026 TGCRN Reproduction Authors
#include "core/tgcrn.h"

#include "obs/health.h"

namespace tgcrn {
namespace core {

TGCRN::TGCRN(const TGCRNConfig& config, Rng* rng)
    : config_(config), sampling_rng_(config.sampling_seed) {
  TGCRN_CHECK_GT(config_.num_nodes, 0);
  TGCRN_CHECK_GE(config_.num_layers, 1);

  if (UsesTime()) {
    switch (config_.time_encoder) {
      case TGCRNConfig::TimeEncoderKind::kDiscrete:
        time_encoder_ = std::make_unique<DiscreteTimeEmbedding>(
            config_.steps_per_day, config_.time_embed_dim, rng);
        break;
      case TGCRNConfig::TimeEncoderKind::kTime2vec:
        time_encoder_ = std::make_unique<Time2vecEncoder>(
            config_.time_embed_dim, config_.steps_per_day, rng);
        break;
      case TGCRNConfig::TimeEncoderKind::kContinuous:
        time_encoder_ = std::make_unique<ContinuousTimeEncoder>(
            config_.time_embed_dim, config_.steps_per_day, rng);
        break;
    }
    RegisterModule("time_encoder", time_encoder_.get());
  }

  TagSL::Options tagsl_options;
  tagsl_options.num_nodes = config_.num_nodes;
  tagsl_options.node_dim = config_.node_embed_dim;
  tagsl_options.alpha = config_.alpha;
  tagsl_options.use_time = UsesTime();
  tagsl_options.use_pdf = config_.use_tagsl && config_.use_pdf;
  tagsl_ = std::make_unique<TagSL>(tagsl_options, time_encoder_.get(), rng);
  RegisterModule("tagsl", tagsl_.get());

  const int64_t time_dim = UsesTime() ? config_.time_embed_dim : 0;
  embed_dim_ = config_.node_embed_dim + time_dim;

  for (int64_t l = 0; l < config_.num_layers; ++l) {
    const int64_t enc_in = l == 0 ? config_.input_dim : config_.hidden_dim;
    encoder_cells_.push_back(std::make_unique<GCGRUCell>(
        enc_in, config_.hidden_dim, config_.node_embed_dim, time_dim, rng));
    RegisterModule("encoder_cell" + std::to_string(l),
                   encoder_cells_.back().get());
  }
  if (config_.use_encoder_decoder) {
    for (int64_t l = 0; l < config_.num_layers; ++l) {
      const int64_t dec_in = l == 0 ? config_.output_dim : config_.hidden_dim;
      decoder_cells_.push_back(std::make_unique<GCGRUCell>(
          dec_in, config_.hidden_dim, config_.node_embed_dim, time_dim,
          rng));
      RegisterModule("decoder_cell" + std::to_string(l),
                     decoder_cells_.back().get());
    }
    output_layer_ = std::make_unique<nn::Linear>(config_.hidden_dim,
                                                 config_.output_dim, rng);
    RegisterModule("output_layer", output_layer_.get());
  } else {
    direct_head_ = std::make_unique<nn::Linear>(
        config_.hidden_dim, config_.horizon * config_.output_dim, rng);
    RegisterModule("direct_head", direct_head_.get());
  }
}

std::vector<int64_t> TGCRN::SlotColumn(
    const std::vector<std::vector<int64_t>>& rows, int64_t t) {
  std::vector<int64_t> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    TGCRN_CHECK_LT(t, static_cast<int64_t>(row.size()));
    out.push_back(row[t]);
  }
  return out;
}

std::vector<int64_t> TGCRN::PrevSlots(const std::vector<int64_t>& slots,
                                      int64_t steps_per_day) {
  std::vector<int64_t> out;
  out.reserve(slots.size());
  for (int64_t s : slots) {
    out.push_back((s + steps_per_day - 1) % steps_per_day);
  }
  return out;
}

Adjacency TGCRN::BuildAdjacency(const ag::Variable& x,
                                const std::vector<int64_t>& slots,
                                const std::vector<int64_t>& prev_slots)
    const {
  if (config_.graph_topk > 0) {
    return Adjacency(
        tagsl_->BuildSparseGraph(x, slots, prev_slots, config_.graph_topk));
  }
  return Adjacency(tagsl_->BuildGraph(x, slots, prev_slots));
}

ag::Variable TGCRN::BuildEmbed(int64_t batch,
                               const std::vector<int64_t>& slots) const {
  // The per-step time representation E_tau,t of Eq 12 ([B, d_tau]); the
  // node half E_nu is passed to GCGRU separately (the factorized form of
  // the concatenation - see gcgru.h).
  (void)batch;
  if (!UsesTime()) return {};
  return time_encoder_->Encode(slots);
}

TGCRNState TGCRN::InitState(int64_t batch_size) const {
  TGCRNState state;
  state.hidden.resize(config_.num_layers);
  for (int64_t l = 0; l < config_.num_layers; ++l) {
    state.hidden[l] = ag::Variable(
        Tensor::Zeros({batch_size, config_.num_nodes, config_.hidden_dim}));
  }
  state.cached_adj.resize(config_.num_layers);
  return state;
}

void TGCRN::EncoderStep(const ag::Variable& x,
                        const std::vector<int64_t>& slots,
                        TGCRNState* state) {
  TGCRN_CHECK(state->initialized());
  TGCRN_CHECK_EQ(x.size(1), config_.num_nodes);
  const int64_t refresh = std::max<int64_t>(config_.graph_refresh_interval,
                                            1);
  const std::vector<int64_t> prev =
      state->last_slots.empty() ? PrevSlots(slots, config_.steps_per_day)
                                : state->last_slots;
  ag::Variable time_embed = BuildEmbed(x.size(0), slots);
  ag::Variable input = x;
  for (int64_t l = 0; l < config_.num_layers; ++l) {
    // Each layer learns its own time-aware graph from its own input
    // state (Section III-C: X^i = h^{i-1}); with refresh > 1 the graph
    // is rebuilt lazily (paper Section IV-C3's proposed optimization).
    if (state->steps % refresh == 0 || !state->cached_adj[l].defined()) {
      state->cached_adj[l] = BuildAdjacency(input, slots, prev);
    }
    input = encoder_cells_[l]->Forward(input, state->hidden[l],
                                       state->cached_adj[l],
                                       tagsl_->node_embedding(), time_embed);
    if (config_.inter_layer_dropout > 0.0f && l + 1 < config_.num_layers) {
      input = ag::Dropout(input, config_.inter_layer_dropout, training(),
                          &sampling_rng_);
    }
    state->hidden[l] = input;
  }
  state->last_slots = slots;
  ++state->steps;
}

ag::Variable TGCRN::DecoderForecast(
    TGCRNState* state, const std::vector<std::vector<int64_t>>& y_slots,
    const Tensor* teacher_values) {
  TGCRN_CHECK(state->initialized());
  const int64_t b = state->hidden.front().size(0);
  const int64_t n = config_.num_nodes;

  if (!config_.use_encoder_decoder) {
    // Table VII "w/o enc-dec": a fully connected head maps the last hidden
    // state directly to all Q steps.
    ag::Variable flat =
        direct_head_->Forward(state->hidden.back());  // [B,N,Q*d]
    ag::Variable shaped = ag::Reshape(
        flat, {b, n, config_.horizon, config_.output_dim});
    ag::Variable direct_out = ag::Permute(shaped, {0, 2, 1, 3});  // [B,Q,N,d]
    TGCRN_HEALTH_TAP("tgcrn.prediction", direct_out.value());
    return direct_out;
  }

  // Hidden states initialized from the encoder; inputs are the model's own
  // previous predictions (recursive multi-step decoding). The adjacency
  // cache is rebuilt at q == 0 (0 % refresh == 0), so a decoder rollout
  // never depends on encoder-cached graphs — which is what lets the
  // serving session decode from a reassembled state.
  const int64_t refresh = std::max<int64_t>(config_.graph_refresh_interval,
                                            1);
  ag::Variable dec_input{Tensor::Zeros({b, n, config_.output_dim})};
  std::vector<ag::Variable> outputs;
  std::vector<int64_t> prev_slots = state->last_slots;
  TGCRN_CHECK(!prev_slots.empty()) << "decoder needs at least one encoded step";
  for (int64_t q = 0; q < config_.horizon; ++q) {
    const std::vector<int64_t> slots = SlotColumn(y_slots, q);
    ag::Variable time_embed = BuildEmbed(b, slots);
    ag::Variable input = dec_input;
    for (int64_t l = 0; l < config_.num_layers; ++l) {
      if (q % refresh == 0 || !state->cached_adj[l].defined()) {
        state->cached_adj[l] = BuildAdjacency(input, slots, prev_slots);
      }
      input = decoder_cells_[l]->Forward(input, state->hidden[l],
                                         state->cached_adj[l],
                                         tagsl_->node_embedding(),
                                         time_embed);
      state->hidden[l] = input;
    }
    ag::Variable y =
        output_layer_->Forward(state->hidden.back());  // [B, N, d_out]
    outputs.push_back(y);
    // Scheduled sampling: while training, with probability
    // teacher_forcing_ the decoder is fed the ground truth for this step
    // (detached from the graph) instead of its own prediction.
    if (training() && teacher_forcing_ > 0.0f && teacher_values != nullptr &&
        sampling_rng_.NextDouble() < teacher_forcing_) {
      dec_input = ag::Variable(
          teacher_values->Slice(1, q, q + 1).Squeeze(1).Clone());
    } else {
      dec_input = y;
    }
    prev_slots = slots;
  }
  ag::Variable prediction = ag::Stack(outputs, 1);  // [B, Q, N, d_out]
  TGCRN_HEALTH_TAP("tgcrn.prediction", prediction.value());
  return prediction;
}

ag::Variable TGCRN::Forward(const data::Batch& batch) {
  const int64_t b = batch.batch_size();
  const int64_t p = batch.x.size(1);
  TGCRN_CHECK_EQ(batch.x.size(2), config_.num_nodes);

  TGCRNState state = InitState(b);
  ag::Variable x_all{batch.x};  // constant input [B, P, N, d]
  for (int64_t t = 0; t < p; ++t) {
    EncoderStep(ag::Squeeze(ag::Slice(x_all, 1, t, t + 1), 1),  // [B, N, d]
                SlotColumn(batch.x_slots, t), &state);
  }
  // Scheduled sampling only draws from the RNG while training with a
  // non-zero probability, so passing the teacher only then keeps the
  // sampling stream identical to the pre-split implementation.
  const Tensor* teacher =
      config_.use_encoder_decoder && training() && teacher_forcing_ > 0.0f
          ? &batch.y_scaled
          : nullptr;
  return DecoderForecast(&state, batch.y_slots, teacher);
}

bool TGCRN::CollectGraphHealth(const data::Batch& batch,
                               obs::GraphHealthReport* out) {
  const int64_t p = batch.x.size(1);
  if (p < 2) return false;
  ag::NoGradGuard no_grad;
  // A^t from the last input step, A^{t-1} from the one before it — the
  // same (x, slot, prev-slot) triples the encoder feeds TagSL.
  ag::Variable x_t{batch.x.Slice(1, p - 1, p).Squeeze(1)};
  ag::Variable x_prev{batch.x.Slice(1, p - 2, p - 1).Squeeze(1)};
  const std::vector<int64_t> slots = SlotColumn(batch.x_slots, p - 1);
  const std::vector<int64_t> prev = SlotColumn(batch.x_slots, p - 2);
  const std::vector<int64_t> prev2 =
      p >= 3 ? SlotColumn(batch.x_slots, p - 3)
             : PrevSlots(prev, config_.steps_per_day);
  *out = tagsl_->ComputeGraphHealth(x_t, x_prev, slots, prev, prev2,
                                    graph_health_options_,
                                    &graph_topk_state_);
  return true;
}

ag::Variable TGCRN::AuxiliaryLoss(const data::Batch& batch, Rng* rng) {
  if (!config_.use_tdl || !UsesTime() ||
      config_.time_encoder != TGCRNConfig::TimeEncoderKind::kDiscrete) {
    return {};
  }
  // Rows are the windows' full P+Q slot sequences; gamma = P/2 (paper:
  // "we set gamma_triangle half of the length of the input time steps").
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(batch.x_slots.size());
  for (size_t i = 0; i < batch.x_slots.size(); ++i) {
    std::vector<int64_t> row = batch.x_slots[i];
    row.insert(row.end(), batch.y_slots[i].begin(), batch.y_slots[i].end());
    rows.push_back(std::move(row));
  }
  const int64_t gamma =
      std::max<int64_t>(1, static_cast<int64_t>(batch.x_slots[0].size()) / 2);
  return TimeDiscrepancyLossFromRows(*time_encoder_, rows, gamma,
                                     config_.steps_per_day, rng);
}

Tensor TGCRN::LearnedAdjacency(const Tensor& x_t,
                               const std::vector<int64_t>& slots) const {
  ag::Variable x{x_t.dim() == 2 ? x_t.Unsqueeze(0) : x_t};
  ag::Variable adj = tagsl_->BuildGraph(
      x, slots, PrevSlots(slots, config_.steps_per_day));
  return adj.value().Mean(0);
}

Tensor TGCRN::LearnedRawAdjacency(const Tensor& x_t,
                                  const std::vector<int64_t>& slots) const {
  ag::Variable x{x_t.dim() == 2 ? x_t.Unsqueeze(0) : x_t};
  ag::Variable adj = tagsl_->BuildRawGraph(
      x, slots, PrevSlots(slots, config_.steps_per_day));
  return adj.value().dim() == 3 ? adj.value().Mean(0) : adj.value();
}

Tensor TGCRN::TimeEmbeddingTable() const {
  auto* discrete = dynamic_cast<DiscreteTimeEmbedding*>(time_encoder_.get());
  TGCRN_CHECK(discrete != nullptr)
      << "time embedding table only exists for the discrete encoder";
  return discrete->weight().value();
}

}  // namespace core
}  // namespace tgcrn
