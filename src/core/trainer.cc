// Copyright 2026 TGCRN Reproduction Authors
#include "core/trainer.h"

#include <chrono>
#include <cmath>
#include <cstdlib>

#include "autograd/ops.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "optim/optimizer.h"

namespace tgcrn {
namespace core {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Accumulates wall-clock into a named phase bucket for the epoch report.
// Usage: { PhaseTimer t(&phases, obs::kPhaseForward); ...work... }
class PhaseTimer {
 public:
  PhaseTimer(std::map<std::string, double>* phases, const char* name)
      : phases_(phases), name_(name), start_(Clock::now()) {}
  ~PhaseTimer() { (*phases_)[name_] += SecondsSince(start_); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::map<std::string, double>* phases_;
  const char* name_;
  Clock::time_point start_;
};

// Collects raw-space predictions and targets for a whole split.
void PredictSplit(ForecastModel* model, const data::ForecastDataset& dataset,
                  data::ForecastDataset::Split split, int64_t batch_size,
                  std::vector<Tensor>* preds, std::vector<Tensor>* targets) {
  model->SetTraining(false);
  // Inference mode: no graph nodes or backward closures are built, so the
  // forward pass neither counts autograd.forward_ops nor retains
  // activations.
  ag::NoGradGuard no_grad;
  const auto batches = dataset.EpochBatches(split, batch_size,
                                            /*rng=*/nullptr);
  for (const auto& ids : batches) {
    const data::Batch batch = dataset.MakeBatch(split, ids);
    ag::Variable pred = model->Forward(batch);
    preds->push_back(dataset.scaler().InverseTransform(pred.value()));
    targets->push_back(batch.y);
  }
  model->SetTraining(true);
}

double SplitMae(ForecastModel* model, const data::ForecastDataset& dataset,
                data::ForecastDataset::Split split,
                const metrics::MetricsOptions& options, int64_t batch_size) {
  std::vector<Tensor> preds, targets;
  PredictSplit(model, dataset, split, batch_size, &preds, &targets);
  const metrics::Metrics m = metrics::Evaluate(
      Tensor::Concat(preds, 0), Tensor::Concat(targets, 0), options);
  return m.mae;
}

}  // namespace

std::vector<metrics::Metrics> EvaluateModel(
    ForecastModel* model, const data::ForecastDataset& dataset,
    data::ForecastDataset::Split split,
    const metrics::MetricsOptions& options, int64_t batch_size) {
  std::vector<Tensor> preds, targets;
  PredictSplit(model, dataset, split, batch_size, &preds, &targets);
  return metrics::EvaluatePerHorizon(Tensor::Concat(preds, 0),
                                     Tensor::Concat(targets, 0), options);
}

int64_t GraphTopKFromEnv() {
  if (const char* env = std::getenv("TGCRN_GRAPH_TOPK")) {
    return static_cast<int64_t>(std::strtoll(env, nullptr, 10));
  }
  return -1;
}

TrainResult TrainAndEvaluate(ForecastModel* model,
                             const data::ForecastDataset& dataset,
                             const TrainConfig& config) {
  TrainResult result;
  result.num_parameters = model->NumParameters();
  if (config.graph_topk >= 0) model->SetGraphTopK(config.graph_topk);
  if (config.num_threads > 0) common::SetNumThreads(config.num_threads);
  result.num_threads = common::GetNumThreads();
  result.report.model = model->name();
  result.report.num_parameters = result.num_parameters;
  result.report.num_threads = result.num_threads;

  Rng rng(config.seed);
  // Health monitor: parameter list cached once here; when disabled, the
  // only per-step cost below is one branch (the zero-alloc steady state
  // pinned by autograd_arena_test stays intact).
  obs::HealthMonitor health_monitor(config.health);
  if (health_monitor.enabled()) health_monitor.Attach(*model);
  // Profiler: snapshots are cumulative, so each epoch's "prof" block is
  // the delta against the previous epoch's snapshot.
  obs::ProfReport prof_prev;
  if (config.prof.enabled) {
    obs::StartProfiling(config.prof);
    prof_prev = obs::CollectProfReport();
  }
  optim::Adam adam(model->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                   config.weight_decay);
  optim::MultiStepLR scheduler(&adam, config.lr_milestones, config.lr_gamma);
  optim::EarlyStopper stopper(config.patience);

  // Best-weights snapshot (values only).
  std::vector<Tensor> best_values;
  auto snapshot = [&]() {
    best_values.clear();
    for (const auto& p : model->Parameters()) {
      best_values.push_back(p.value().Clone());
    }
  };
  auto restore = [&]() {
    if (best_values.empty()) return;
    auto params = model->Parameters();
    TGCRN_CHECK_EQ(params.size(), best_values.size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].SetValue(best_values[i].Clone());
    }
  };

  const auto train_start = Clock::now();
  double epoch_seconds_sum = 0.0;
  int64_t global_step = 0;
  model->SetTraining(true);

  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto epoch_start = Clock::now();
    auto batches = dataset.EpochBatches(data::ForecastDataset::Split::kTrain,
                                        config.batch_size, &rng);
    if (config.max_batches_per_epoch > 0 &&
        static_cast<int64_t>(batches.size()) > config.max_batches_per_epoch) {
      batches.resize(config.max_batches_per_epoch);
    }
    obs::EpochReport epoch_report;
    epoch_report.epoch = epoch;
    const bool health_sampled = health_monitor.ShouldSample(epoch);
    double loss_sum = 0.0;
    double grad_norm_sum = 0.0;
    double grad_norm_last = 0.0;
    int64_t batch_index = 0;
    for (const auto& ids : batches) {
      data::Batch batch;
      {
        PhaseTimer timer(&epoch_report.phase_seconds, obs::kPhaseData);
        batch = dataset.MakeBatch(data::ForecastDataset::Split::kTrain, ids);
      }
      if (config.scheduled_sampling_tau > 0.0) {
        const double tau = config.scheduled_sampling_tau;
        const double p =
            tau / (tau + std::exp(static_cast<double>(global_step) / tau));
        model->SetTeacherForcingProbability(static_cast<float>(p));
      }
      ++global_step;
      model->ZeroGrad();
      // Everything from forward to the loss read runs inside one arena
      // step: interior graph nodes are bump-allocated and the whole graph
      // is torn down in a flat O(nodes) walk + O(1) arena reset when the
      // scope closes (no-op when TGCRN_AUTOGRAD_ARENA=0). `loss` must not
      // escape the scope, so the scalar is read before it ends.
      ag::StepArenaScope arena_step;
      ag::Variable loss;
      // Activation taps sample the first training batch of each sampled
      // epoch (one representative forward, not every batch).
      const bool sampling_activations = health_sampled && batch_index == 0;
      if (sampling_activations) {
        health_monitor.BeginActivationSampling(global_step);
      }
      {
        PhaseTimer timer(&epoch_report.phase_seconds, obs::kPhaseForward);
        TGCRN_TRACE_SCOPE("train.forward");
        ag::Variable pred = model->Forward(batch);
        loss = ag::MaeLoss(pred, ag::Variable(batch.y_scaled));
        const float aux_weight = model->auxiliary_weight();
        if (aux_weight > 0.0f) {
          ag::Variable aux = model->AuxiliaryLoss(batch, &rng);
          if (aux.defined()) {
            loss = ag::Add(loss, ag::MulScalar(aux, aux_weight));
          }
        }
      }
      if (sampling_activations) health_monitor.EndActivationSampling();
      {
        PhaseTimer timer(&epoch_report.phase_seconds, obs::kPhaseBackward);
        TGCRN_TRACE_SCOPE("train.backward");
        loss.Backward();
      }
      {
        PhaseTimer timer(&epoch_report.phase_seconds, obs::kPhaseClip);
        TGCRN_TRACE_SCOPE("train.clip");
        grad_norm_last = optim::ClipGradNorm(adam.params(), config.clip_norm);
        grad_norm_sum += grad_norm_last;
      }
      // Sentinel: a NaN/Inf anywhere in the gradients propagates through
      // the clip reduction, so this finiteness test detects it for free.
      if (health_monitor.enabled() && !std::isfinite(grad_norm_last)) {
        health_monitor.HandleNonFiniteGradients(global_step);
      }
      {
        PhaseTimer timer(&epoch_report.phase_seconds, obs::kPhaseAdam);
        TGCRN_TRACE_SCOPE("train.adam_step");
        adam.Step();
      }
      loss_sum += loss.value().item();
      ++batch_index;
    }
    const double train_loss =
        batches.empty() ? 0.0 : loss_sum / static_cast<double>(batches.size());
    result.train_loss_history.push_back(train_loss);

    double val_mae = 0.0;
    {
      PhaseTimer timer(&epoch_report.phase_seconds, obs::kPhaseEval);
      TGCRN_TRACE_SCOPE("train.eval");
      val_mae = SplitMae(model, dataset, data::ForecastDataset::Split::kVal,
                         config.metric_options, config.batch_size);
    }
    result.val_mae_history.push_back(val_mae);

    epoch_report.train_loss = train_loss;
    epoch_report.val_mae = val_mae;
    epoch_report.lr = adam.lr();  // LR the epoch actually trained with
    epoch_report.grad_norm_last = grad_norm_last;
    epoch_report.grad_norm_mean =
        batches.empty() ? 0.0
                        : grad_norm_sum / static_cast<double>(batches.size());
    if (health_sampled) {
      PhaseTimer timer(&epoch_report.phase_seconds, obs::kPhaseHealth);
      TGCRN_TRACE_SCOPE("train.health");
      epoch_report.has_health = true;
      health_monitor.CollectInto(global_step, &epoch_report.health);
      if (!batches.empty()) {
        // Learned-graph diagnostics on a deterministic sample: the epoch's
        // first training batch.
        const data::Batch sample = dataset.MakeBatch(
            data::ForecastDataset::Split::kTrain, batches.front());
        epoch_report.health.has_graph =
            model->CollectGraphHealth(sample, &epoch_report.health.graph);
      }
    }
    if (config.prof.enabled) {
      PhaseTimer timer(&epoch_report.phase_seconds, obs::kPhaseProf);
      obs::ProfReport snapshot = obs::CollectProfReport();
      epoch_report.has_prof = true;
      epoch_report.prof = snapshot.DeltaFrom(prof_prev);
      prof_prev = std::move(snapshot);
    }
    epoch_report.seconds = SecondsSince(epoch_start);
    epoch_seconds_sum += epoch_report.seconds;
    if (!config.report_path.empty() &&
        !obs::RunReport::AppendJsonLine(config.report_path,
                                        epoch_report.ToJson())) {
      TGCRN_LOG(Warning) << "failed to append epoch report to "
                         << config.report_path;
    }
    result.report.epochs.push_back(std::move(epoch_report));

    scheduler.Step(epoch);
    ++result.epochs_run;

    if (stopper.Update(static_cast<float>(val_mae))) snapshot();
    if (config.verbose) {
      TGCRN_LOG(Info) << model->name() << " epoch " << epoch
                      << " train_loss=" << train_loss
                      << " val_mae=" << val_mae << " lr=" << adam.lr();
    }
    if (stopper.ShouldStop()) {
      if (config.verbose) {
        TGCRN_LOG(Info) << model->name() << " early stop at epoch " << epoch;
      }
      break;
    }
  }
  restore();

  result.total_seconds = SecondsSince(train_start);
  result.seconds_per_epoch =
      result.epochs_run > 0 ? epoch_seconds_sum / result.epochs_run : 0.0;
  result.per_horizon =
      EvaluateModel(model, dataset, data::ForecastDataset::Split::kTest,
                    config.metric_options, config.batch_size);
  result.average = metrics::AverageMetrics(result.per_horizon);

  result.report.epochs_run = result.epochs_run;
  result.report.total_seconds = result.total_seconds;
  for (const auto& m : result.per_horizon) {
    obs::HorizonMetricsReport h;
    h.mae = m.mae;
    h.rmse = m.rmse;
    h.mape = m.mape;
    result.report.test_per_horizon.push_back(h);
  }
  result.report.test_average.mae = result.average.mae;
  result.report.test_average.rmse = result.average.rmse;
  result.report.test_average.mape = result.average.mape;
  if (!config.report_path.empty() &&
      !obs::RunReport::AppendJsonLine(config.report_path,
                                      result.report.SummaryJson())) {
    TGCRN_LOG(Warning) << "failed to append run summary to "
                       << config.report_path;
  }
  return result;
}

}  // namespace core
}  // namespace tgcrn
