// Copyright 2026 TGCRN Reproduction Authors
#include "core/trainer.h"

#include <chrono>
#include <cmath>

#include "autograd/ops.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "optim/optimizer.h"

namespace tgcrn {
namespace core {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Collects raw-space predictions and targets for a whole split.
void PredictSplit(ForecastModel* model, const data::ForecastDataset& dataset,
                  data::ForecastDataset::Split split, int64_t batch_size,
                  std::vector<Tensor>* preds, std::vector<Tensor>* targets) {
  model->SetTraining(false);
  const auto batches = dataset.EpochBatches(split, batch_size,
                                            /*rng=*/nullptr);
  for (const auto& ids : batches) {
    const data::Batch batch = dataset.MakeBatch(split, ids);
    ag::Variable pred = model->Forward(batch);
    preds->push_back(dataset.scaler().InverseTransform(pred.value()));
    targets->push_back(batch.y);
  }
  model->SetTraining(true);
}

double SplitMae(ForecastModel* model, const data::ForecastDataset& dataset,
                data::ForecastDataset::Split split,
                const metrics::MetricsOptions& options, int64_t batch_size) {
  std::vector<Tensor> preds, targets;
  PredictSplit(model, dataset, split, batch_size, &preds, &targets);
  const metrics::Metrics m = metrics::Evaluate(
      Tensor::Concat(preds, 0), Tensor::Concat(targets, 0), options);
  return m.mae;
}

}  // namespace

std::vector<metrics::Metrics> EvaluateModel(
    ForecastModel* model, const data::ForecastDataset& dataset,
    data::ForecastDataset::Split split,
    const metrics::MetricsOptions& options, int64_t batch_size) {
  std::vector<Tensor> preds, targets;
  PredictSplit(model, dataset, split, batch_size, &preds, &targets);
  return metrics::EvaluatePerHorizon(Tensor::Concat(preds, 0),
                                     Tensor::Concat(targets, 0), options);
}

TrainResult TrainAndEvaluate(ForecastModel* model,
                             const data::ForecastDataset& dataset,
                             const TrainConfig& config) {
  TrainResult result;
  result.num_parameters = model->NumParameters();
  if (config.num_threads > 0) common::SetNumThreads(config.num_threads);
  result.num_threads = common::GetNumThreads();

  Rng rng(config.seed);
  optim::Adam adam(model->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                   config.weight_decay);
  optim::MultiStepLR scheduler(&adam, config.lr_milestones, config.lr_gamma);
  optim::EarlyStopper stopper(config.patience);

  // Best-weights snapshot (values only).
  std::vector<Tensor> best_values;
  auto snapshot = [&]() {
    best_values.clear();
    for (const auto& p : model->Parameters()) {
      best_values.push_back(p.value().Clone());
    }
  };
  auto restore = [&]() {
    if (best_values.empty()) return;
    auto params = model->Parameters();
    TGCRN_CHECK_EQ(params.size(), best_values.size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].SetValue(best_values[i].Clone());
    }
  };

  const auto train_start = Clock::now();
  double epoch_seconds_sum = 0.0;
  int64_t global_step = 0;
  model->SetTraining(true);

  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto epoch_start = Clock::now();
    auto batches = dataset.EpochBatches(data::ForecastDataset::Split::kTrain,
                                        config.batch_size, &rng);
    if (config.max_batches_per_epoch > 0 &&
        static_cast<int64_t>(batches.size()) > config.max_batches_per_epoch) {
      batches.resize(config.max_batches_per_epoch);
    }
    double loss_sum = 0.0;
    for (const auto& ids : batches) {
      const data::Batch batch =
          dataset.MakeBatch(data::ForecastDataset::Split::kTrain, ids);
      if (config.scheduled_sampling_tau > 0.0) {
        const double tau = config.scheduled_sampling_tau;
        const double p =
            tau / (tau + std::exp(static_cast<double>(global_step) / tau));
        model->SetTeacherForcingProbability(static_cast<float>(p));
      }
      ++global_step;
      model->ZeroGrad();
      ag::Variable pred = model->Forward(batch);
      ag::Variable loss = ag::MaeLoss(pred, ag::Variable(batch.y_scaled));
      const float aux_weight = model->auxiliary_weight();
      if (aux_weight > 0.0f) {
        ag::Variable aux = model->AuxiliaryLoss(batch, &rng);
        if (aux.defined()) {
          loss = ag::Add(loss, ag::MulScalar(aux, aux_weight));
        }
      }
      loss.Backward();
      optim::ClipGradNorm(adam.params(), config.clip_norm);
      adam.Step();
      loss_sum += loss.value().item();
    }
    const double train_loss =
        batches.empty() ? 0.0 : loss_sum / static_cast<double>(batches.size());
    result.train_loss_history.push_back(train_loss);
    epoch_seconds_sum += SecondsSince(epoch_start);

    const double val_mae =
        SplitMae(model, dataset, data::ForecastDataset::Split::kVal,
                 config.metric_options, config.batch_size);
    result.val_mae_history.push_back(val_mae);
    scheduler.Step(epoch);
    ++result.epochs_run;

    if (stopper.Update(static_cast<float>(val_mae))) snapshot();
    if (config.verbose) {
      TGCRN_LOG(Info) << model->name() << " epoch " << epoch
                      << " train_loss=" << train_loss
                      << " val_mae=" << val_mae << " lr=" << adam.lr();
    }
    if (stopper.ShouldStop()) {
      if (config.verbose) {
        TGCRN_LOG(Info) << model->name() << " early stop at epoch " << epoch;
      }
      break;
    }
  }
  restore();

  result.total_seconds = SecondsSince(train_start);
  result.seconds_per_epoch =
      result.epochs_run > 0 ? epoch_seconds_sum / result.epochs_run : 0.0;
  result.per_horizon =
      EvaluateModel(model, dataset, data::ForecastDataset::Split::kTest,
                    config.metric_options, config.batch_size);
  result.average = metrics::AverageMetrics(result.per_horizon);
  return result;
}

}  // namespace core
}  // namespace tgcrn
