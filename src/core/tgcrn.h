// Copyright 2026 TGCRN Reproduction Authors
// The full Time-aware Graph Convolutional Recurrent Network (Section III-C):
// an encoder-decoder of stacked GCGRU layers whose adjacency at every step
// is produced by TagSL, trained with the joint objective
// L = L_error + lambda * L_time (Eq 17). All ablation variants of Table VII
// are switchable through TGCRNConfig.
#ifndef TGCRN_CORE_TGCRN_H_
#define TGCRN_CORE_TGCRN_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/forecast_model.h"
#include "core/gcgru.h"
#include "core/tagsl.h"
#include "core/time_discrepancy.h"
#include "core/time_encoders.h"
#include "nn/linear.h"

namespace tgcrn {
namespace core {

struct TGCRNConfig {
  int64_t num_nodes = 0;
  int64_t input_dim = 2;    // d features per node
  int64_t output_dim = 2;   // forecast channels
  int64_t horizon = 4;      // Q
  int64_t hidden_dim = 16;  // GCGRU units
  int64_t num_layers = 2;
  int64_t node_embed_dim = 12;  // d_nu
  int64_t time_embed_dim = 8;   // d_tau
  int64_t steps_per_day = 72;   // |T| of the discretized day
  float alpha = 0.3f;           // saturation factor (Eq 9)
  float lambda = 0.1f;          // joint-loss weight (Eq 17)
  // Ablation switches (Table VII):
  bool use_tagsl = true;    // false => AGCRN-style static self-learned graph
  bool use_tdl = true;      // time discrepancy learning loss
  bool use_pdf = true;      // periodic discriminant function
  bool use_encoder_decoder = true;  // false => direct FC multi-step head
  enum class TimeEncoderKind { kDiscrete, kTime2vec, kContinuous };
  TimeEncoderKind time_encoder = TimeEncoderKind::kDiscrete;
  // Implements the paper's stated future-work optimization (Section
  // IV-C3): "the changes in correlations between time steps are often
  // small, making it unnecessary to calculate them so frequently". With
  // interval k > 1, the time-aware graph is rebuilt only every k-th
  // recurrent step (per layer) and reused in between. k = 1 is the paper's
  // model. bench_ablation_refresh measures the accuracy/time trade-off.
  int64_t graph_refresh_interval = 1;
  // Learned-graph sparsity (the TGCRN_GRAPH_TOPK path): > 0 keeps only
  // each row's top-k adjacency entries, renormalized, and runs the GCGRU
  // aggregation as CSR SpMM — autograd compute/memory O(N*k) instead of
  // O(N^2). 0 (default) is the dense paper model, bit-exact with the
  // pre-sparse behavior. Dropped edges receive exactly zero gradient
  // (the sparse-training contract, autograd/sparse_ops.h).
  int64_t graph_topk = 0;
  // Dropout applied between stacked GCGRU layers at train time (0 = off;
  // the paper does not specify one - provided as a regularization option).
  float inter_layer_dropout = 0.0f;
  // Enables scheduled-sampling support in the decoder (see
  // ForecastModel::SetTeacherForcingProbability).
  bool allow_teacher_forcing = true;
  uint64_t sampling_seed = 9177;
};

// Incremental recurrent state of a TGCRN encoder over one batch: the
// per-layer GCGRU hidden states plus the per-layer adjacency cache and step
// counter that drive graph_refresh_interval, and the slots of the most
// recent step (the prev-slots input of the next one). Forward() is built on
// this state, so one EncoderStep is bitwise-identical to the corresponding
// step inside a full P-window Forward — the property the serving layer
// (src/serve) relies on to advance entities one observation at a time
// instead of replaying windows. Copying a state copies cheap shared
// handles, not tensor storage.
struct TGCRNState {
  std::vector<ag::Variable> hidden;   // per layer [B, N, hidden_dim]
  std::vector<Adjacency> cached_adj;  // per layer, refresh-interval cache
  std::vector<int64_t> last_slots;    // per sample; empty before any step
  int64_t steps = 0;                  // encoder steps consumed

  bool initialized() const { return !hidden.empty(); }
};

class TGCRN : public ForecastModel {
 public:
  TGCRN(const TGCRNConfig& config, Rng* rng);

  ag::Variable Forward(const data::Batch& batch) override;

  // --- Step-level inference API (the model/runtime split, DESIGN §15) ---
  // Forward() is exactly InitState + P × EncoderStep + DecoderForecast;
  // callers that keep their own state (the serving session) get bitwise-
  // identical results by construction.
  // Zero-hidden state for a batch of `batch_size` samples.
  TGCRNState InitState(int64_t batch_size) const;
  // Advances the recurrence by one step. x is [B, N, input_dim]; slots are
  // the per-sample slot-of-day ids of this step. The previous step's slots
  // come from the state (PrevSlots of `slots` on the very first step,
  // matching Forward's t == 0 handling).
  void EncoderStep(const ag::Variable& x, const std::vector<int64_t>& slots,
                   TGCRNState* state);
  // Rolls the decoder (or the direct head) out of `state`, producing the
  // [B, Q, N, output_dim] forecast. y_slots rows are the per-sample slot
  // ids of the Q future steps. Mutates state->hidden/cached_adj — pass a
  // copy to keep the encoder state. `teacher_values` ([B, Q, N, d],
  // scaled) enables scheduled sampling and is only consulted while
  // training; inference callers pass nullptr.
  ag::Variable DecoderForecast(
      TGCRNState* state, const std::vector<std::vector<int64_t>>& y_slots,
      const Tensor* teacher_values = nullptr);
  ag::Variable AuxiliaryLoss(const data::Batch& batch, Rng* rng) override;
  float auxiliary_weight() const override {
    return (config_.use_tdl && UsesTime()) ? config_.lambda : 0.0f;
  }
  void SetTeacherForcingProbability(float probability) override {
    teacher_forcing_ = config_.allow_teacher_forcing ? probability : 0.0f;
  }
  void SetGraphTopK(int64_t k) override {
    config_.graph_topk = std::max<int64_t>(k, 0);
  }
  std::string name() const override { return "TGCRN"; }

  // Learned-graph diagnostics on the batch's last two input steps (entropy,
  // sparsity, adjacent-step drift, cross-epoch top-k stability). Returns
  // false when the input window is too short (P < 2). Works for the
  // ablated graph variants too — TagSL always produces the adjacency.
  bool CollectGraphHealth(const data::Batch& batch,
                          obs::GraphHealthReport* out) override;

  // The learned time-aware adjacency (normalized) for one step, averaged
  // over the batch dimension - used by the Fig 11 / Fig 12 analyses.
  Tensor LearnedAdjacency(const Tensor& x_t,
                          const std::vector<int64_t>& slots) const;
  // The raw (pre-normalization) A^t of Eq 9.
  Tensor LearnedRawAdjacency(const Tensor& x_t,
                             const std::vector<int64_t>& slots) const;

  // The discrete time-embedding table [steps_per_day, d_tau] (CHECK-fails
  // for the continuous encoder variants).
  Tensor TimeEmbeddingTable() const;

  const TGCRNConfig& config() const { return config_; }

 private:
  bool UsesTime() const {
    return config_.use_tagsl;  // time enters through TagSL and E_hat
  }
  // Builds E_hat^t = [E_nu ; E_tau,t] broadcast to [B, N, embed_dim].
  ag::Variable BuildEmbed(int64_t batch,
                          const std::vector<int64_t>& slots) const;
  // The per-step aggregation operand: dense TagSL graph, or its top-k CSR
  // form when config_.graph_topk > 0.
  Adjacency BuildAdjacency(const ag::Variable& x,
                           const std::vector<int64_t>& slots,
                           const std::vector<int64_t>& prev_slots) const;
  // Per-sample slots at step t of the batch (column of slot rows).
  static std::vector<int64_t> SlotColumn(
      const std::vector<std::vector<int64_t>>& rows, int64_t t);
  static std::vector<int64_t> PrevSlots(const std::vector<int64_t>& slots,
                                        int64_t steps_per_day);

  TGCRNConfig config_;
  GraphHealthOptions graph_health_options_;
  GraphTopKState graph_topk_state_;
  int64_t embed_dim_ = 0;
  float teacher_forcing_ = 0.0f;
  Rng sampling_rng_{9177};
  std::unique_ptr<TimeEncoder> time_encoder_;
  std::unique_ptr<TagSL> tagsl_;
  std::vector<std::unique_ptr<GCGRUCell>> encoder_cells_;
  std::vector<std::unique_ptr<GCGRUCell>> decoder_cells_;
  std::unique_ptr<nn::Linear> output_layer_;   // decoder head (per step)
  std::unique_ptr<nn::Linear> direct_head_;    // w/o enc-dec head
};

}  // namespace core
}  // namespace tgcrn

#endif  // TGCRN_CORE_TGCRN_H_
