// Copyright 2026 TGCRN Reproduction Authors
// Time Discrepancy Learning (Section III-A2): the self-supervised
// regularizer that makes distances between time representations
// proportional to distances between time steps. Implements the
// time-distance sampling of Algorithm 1 and the ratio loss of Eq 3-5.
#ifndef TGCRN_CORE_TIME_DISCREPANCY_H_
#define TGCRN_CORE_TIME_DISCREPANCY_H_

#include <vector>

#include "autograd/ops.h"
#include "common/rng.h"
#include "core/time_encoders.h"

namespace tgcrn {
namespace core {

// The four sample groups of Algorithm 1, one entry per batch row.
struct TimeDistanceSamples {
  std::vector<int64_t> anchor;    // X_tau_O
  std::vector<int64_t> adjacent;  // X_tau_triangle (within gamma of anchor)
  std::vector<int64_t> mid;       // X_tau_diamond  (outside adjacent range)
  std::vector<int64_t> distant;   // X_tau_nabla    (from another row)
};

// Runs Algorithm 1 over `slot_rows` (one row of consecutive slot ids per
// batch sample, the window's P+Q slots). `adjacent_range` is gamma_triangle;
// the paper sets it to half the input length.
TimeDistanceSamples SampleTimeDistances(
    const std::vector<std::vector<int64_t>>& slot_rows,
    int64_t adjacent_range, Rng* rng);

// Circular distance between two slot ids on a day of `steps_per_day` slots
// (the embedding table domain is the day, so 23:45 and 00:00 are adjacent).
int64_t CircularSlotDistance(int64_t a, int64_t b, int64_t steps_per_day);

// Eq 3: L_time = sum over group pairs of || zeta_i/d_i - zeta_j/d_j ||_1,
// where zeta is the Euclidean embedding distance to the anchor (Eq 4) and d
// the slot distance (Eq 5). Returns a scalar Variable wired into E_tau.
ag::Variable TimeDiscrepancyLoss(const TimeEncoder& encoder,
                                 const TimeDistanceSamples& samples,
                                 int64_t steps_per_day);

// Convenience: sampling + loss from a batch's slot rows.
ag::Variable TimeDiscrepancyLossFromRows(
    const TimeEncoder& encoder,
    const std::vector<std::vector<int64_t>>& slot_rows,
    int64_t adjacent_range, int64_t steps_per_day, Rng* rng);

}  // namespace core
}  // namespace tgcrn

#endif  // TGCRN_CORE_TIME_DISCREPANCY_H_
