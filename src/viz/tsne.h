// Copyright 2026 TGCRN Reproduction Authors
// Exact t-SNE (van der Maaten & Hinton, 2008) for the paper's Fig 12
// visualization of time representations. O(n^2) per iteration - fine for
// the <= a few hundred points this repository embeds. Also provides the
// order-consistency statistics used to quantify what the paper shows
// visually (time slots forming an ordered 1-D ribbon in 2-D space).
#ifndef TGCRN_VIZ_TSNE_H_
#define TGCRN_VIZ_TSNE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace viz {

struct TsneOptions {
  double perplexity = 12.0;
  int64_t iterations = 400;
  double learning_rate = 50.0;
  double early_exaggeration = 4.0;
  int64_t exaggeration_iters = 80;
  double momentum = 0.8;
  uint64_t seed = 1;
};

// Embeds the rows of `points` ([n, d]) into 2-D; returns [n, 2].
Tensor Tsne(const Tensor& points, const TsneOptions& options = {});

// Spearman rank correlation between two sequences (|rho| near 1 means a
// monotone relationship).
double SpearmanRank(const std::vector<double>& a,
                    const std::vector<double>& b);

// Order consistency of an embedding with the natural index order: projects
// the rows of `embedding` ([n, k]) onto their first principal axis and
// returns |Spearman(projection, 0..n-1)|. A time embedding that lays the
// day out as an ordered curve scores near 1; an unstructured one near 0.
double OrderConsistency(const Tensor& embedding);

// Pearson correlation between pairwise embedding distances and pairwise
// index distances - a second, projection-free view of Fig 12's claim that
// embedding distances track time distances. With `circular_period` > 0 the
// index distance is circular (min(|i-j|, period-|i-j|)), the right notion
// when the rows are slots of a wrapping day: a well-trained time embedding
// forms a closed ribbon, which linear index distance under-credits.
double DistanceProportionality(const Tensor& embedding,
                               int64_t circular_period = 0);

// Fraction of rows whose nearest neighbour in embedding space is an
// adjacent index (circularly when period > 0). A perfectly ordered ribbon
// scores 1; random embeddings score ~2/(n-1).
double NeighborOrderPreservation(const Tensor& embedding,
                                 int64_t circular_period = 0);

}  // namespace viz
}  // namespace tgcrn

#endif  // TGCRN_VIZ_TSNE_H_
