// Copyright 2026 TGCRN Reproduction Authors
#include "viz/heatmap.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace tgcrn {
namespace viz {

namespace {

// Max over off-diagonal (or all) cells.
float MatrixMax(const Tensor& m, bool mask_diagonal) {
  const int64_t n = m.size(0);
  float max_val = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (mask_diagonal && i == j) continue;
      max_val = std::max(max_val, m.at({i, j}));
    }
  }
  return max_val;
}

char Glyph(float value, float max_val, const std::string& ramp) {
  if (max_val <= 0.0f) return ramp.front();
  const float unit = std::clamp(value / max_val, 0.0f, 1.0f);
  const size_t idx = std::min(
      ramp.size() - 1,
      static_cast<size_t>(unit * static_cast<float>(ramp.size())));
  return ramp[idx];
}

}  // namespace

std::string RenderHeatmap(const Tensor& matrix,
                          const HeatmapOptions& options) {
  TGCRN_CHECK_EQ(matrix.dim(), 2);
  TGCRN_CHECK_EQ(matrix.size(0), matrix.size(1));
  return RenderHeatmapRow({matrix}, {""}, options);
}

std::string RenderHeatmapRow(const std::vector<Tensor>& matrices,
                             const std::vector<std::string>& titles,
                             const HeatmapOptions& options) {
  TGCRN_CHECK(!matrices.empty());
  TGCRN_CHECK_EQ(matrices.size(), titles.size());
  const int64_t n = matrices[0].size(0);
  for (const auto& m : matrices) {
    TGCRN_CHECK_EQ(m.dim(), 2);
    TGCRN_CHECK_EQ(m.size(0), n);
    TGCRN_CHECK_EQ(m.size(1), n);
  }
  float global_max = 0.0f;
  for (const auto& m : matrices) {
    global_max = std::max(global_max, MatrixMax(m, options.mask_diagonal));
  }

  std::ostringstream out;
  // Title line.
  for (size_t k = 0; k < matrices.size(); ++k) {
    std::string title = titles[k];
    title.resize(static_cast<size_t>(n) + 2, ' ');
    out << title << " ";
  }
  out << "\n";
  for (int64_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < matrices.size(); ++k) {
      const float max_val = options.per_matrix_scale
                                ? MatrixMax(matrices[k],
                                            options.mask_diagonal)
                                : global_max;
      out << "|";
      for (int64_t j = 0; j < n; ++j) {
        if (options.mask_diagonal && i == j) {
          out << '/';
        } else {
          out << Glyph(matrices[k].at({i, j}), max_val, options.ramp);
        }
      }
      out << "|  ";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace viz
}  // namespace tgcrn
