// Copyright 2026 TGCRN Reproduction Authors
#include "viz/tsne.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace tgcrn {
namespace viz {

namespace {

// Row-wise conditional probabilities with per-point bandwidth chosen by
// binary search so the row entropy matches log(perplexity).
std::vector<double> ConditionalP(const std::vector<double>& sq_dist,
                                 int64_t n, double perplexity) {
  std::vector<double> p(n * n, 0.0);
  const double target_entropy = std::log(perplexity);
  for (int64_t i = 0; i < n; ++i) {
    double beta_lo = 0.0, beta_hi = 1e12, beta = 1.0;
    for (int iter = 0; iter < 60; ++iter) {
      double sum = 0.0, weighted = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double w = std::exp(-beta * sq_dist[i * n + j]);
        p[i * n + j] = w;
        sum += w;
        weighted += w * sq_dist[i * n + j];
      }
      if (sum <= 1e-300) {
        beta_hi = beta;
        beta = 0.5 * (beta_lo + beta_hi);
        continue;
      }
      // H = log(sum) + beta * E[d]
      const double entropy = std::log(sum) + beta * weighted / sum;
      if (std::fabs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = beta_hi > 1e11 ? beta * 2.0 : 0.5 * (beta_lo + beta_hi);
      } else {
        beta_hi = beta;
        beta = 0.5 * (beta_lo + beta_hi);
      }
    }
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) sum += p[i * n + j];
    if (sum > 0) {
      for (int64_t j = 0; j < n; ++j) p[i * n + j] /= sum;
    }
  }
  return p;
}

}  // namespace

Tensor Tsne(const Tensor& points, const TsneOptions& options) {
  TGCRN_CHECK_EQ(points.dim(), 2);
  const int64_t n = points.size(0);
  const int64_t d = points.size(1);
  TGCRN_CHECK_GE(n, 3);

  // Pairwise squared distances in input space.
  std::vector<double> sq_dist(n * n, 0.0);
  const float* x = points.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        const double diff = x[i * d + c] - x[j * d + c];
        s += diff * diff;
      }
      sq_dist[i * n + j] = s;
      sq_dist[j * n + i] = s;
    }
  }
  // Symmetrized joint probabilities.
  const auto cond = ConditionalP(sq_dist, n,
                                 std::min<double>(options.perplexity,
                                                  (n - 1) / 3.0));
  std::vector<double> p(n * n, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      p[i * n + j] =
          std::max((cond[i * n + j] + cond[j * n + i]) / (2.0 * n), 1e-12);
    }
  }

  // Gradient descent on the 2-D embedding.
  Rng rng(options.seed);
  std::vector<double> y(n * 2), velocity(n * 2, 0.0);
  for (auto& v : y) v = rng.Gaussian(0.0, 1e-2);
  std::vector<double> q(n * n), num(n * n);

  for (int64_t iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    // Student-t affinities in embedding space.
    double q_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        const double dy0 = y[i * 2] - y[j * 2];
        const double dy1 = y[i * 2 + 1] - y[j * 2 + 1];
        const double v = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
        num[i * n + j] = v;
        num[j * n + i] = v;
        q_sum += 2.0 * v;
      }
      num[i * n + i] = 0.0;
    }
    for (int64_t k = 0; k < n * n; ++k) {
      q[k] = std::max(num[k] / q_sum, 1e-12);
    }
    // Gradient and update.
    for (int64_t i = 0; i < n; ++i) {
      double g0 = 0.0, g1 = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double coeff =
            (exaggeration * p[i * n + j] - q[i * n + j]) * num[i * n + j];
        g0 += coeff * (y[i * 2] - y[j * 2]);
        g1 += coeff * (y[i * 2 + 1] - y[j * 2 + 1]);
      }
      velocity[i * 2] =
          options.momentum * velocity[i * 2] - options.learning_rate * g0;
      velocity[i * 2 + 1] = options.momentum * velocity[i * 2 + 1] -
                            options.learning_rate * g1;
    }
    for (int64_t k = 0; k < n * 2; ++k) y[k] += velocity[k];
  }

  Tensor out(Shape{n, 2});
  for (int64_t k = 0; k < n * 2; ++k) {
    out.set_flat(k, static_cast<float>(y[k]));
  }
  return out;
}

namespace {

std::vector<double> Ranks(const std::vector<double>& values) {
  const int64_t n = static_cast<int64_t>(values.size());
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int64_t a, int64_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  for (int64_t r = 0; r < n; ++r) {
    ranks[order[r]] = static_cast<double>(r);
  }
  return ranks;
}

double Pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const int64_t n = static_cast<int64_t>(a.size());
  double ma = 0, mb = 0;
  for (int64_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (int64_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  const double denom = std::sqrt(va * vb);
  return denom > 1e-12 ? cov / denom : 0.0;
}

}  // namespace

double SpearmanRank(const std::vector<double>& a,
                    const std::vector<double>& b) {
  TGCRN_CHECK_EQ(a.size(), b.size());
  TGCRN_CHECK_GE(a.size(), 3u);
  return Pearson(Ranks(a), Ranks(b));
}

double OrderConsistency(const Tensor& embedding) {
  TGCRN_CHECK_EQ(embedding.dim(), 2);
  const int64_t n = embedding.size(0);
  const int64_t k = embedding.size(1);
  // First principal axis via a few power iterations on the covariance.
  std::vector<double> mean(k, 0.0);
  const float* e = embedding.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < k; ++c) mean[c] += e[i * k + c];
  }
  for (auto& m : mean) m /= n;
  std::vector<double> cov(k * k, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t a = 0; a < k; ++a) {
      for (int64_t b = 0; b < k; ++b) {
        cov[a * k + b] +=
            (e[i * k + a] - mean[a]) * (e[i * k + b] - mean[b]);
      }
    }
  }
  std::vector<double> axis(k, 1.0 / std::sqrt(static_cast<double>(k)));
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<double> next(k, 0.0);
    for (int64_t a = 0; a < k; ++a) {
      for (int64_t b = 0; b < k; ++b) next[a] += cov[a * k + b] * axis[b];
    }
    double norm = 0.0;
    for (double v : next) norm += v * v;
    norm = std::sqrt(norm);
    if (norm < 1e-12) break;
    for (int64_t a = 0; a < k; ++a) axis[a] = next[a] / norm;
  }
  std::vector<double> projection(n), index(n);
  for (int64_t i = 0; i < n; ++i) {
    double dot = 0.0;
    for (int64_t c = 0; c < k; ++c) {
      dot += (e[i * k + c] - mean[c]) * axis[c];
    }
    projection[i] = dot;
    index[i] = static_cast<double>(i);
  }
  return std::fabs(SpearmanRank(projection, index));
}

double DistanceProportionality(const Tensor& embedding,
                               int64_t circular_period) {
  TGCRN_CHECK_EQ(embedding.dim(), 2);
  const int64_t n = embedding.size(0);
  const int64_t k = embedding.size(1);
  const float* e = embedding.data();
  std::vector<double> emb_dist, idx_dist;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (int64_t c = 0; c < k; ++c) {
        const double diff = e[i * k + c] - e[j * k + c];
        s += diff * diff;
      }
      emb_dist.push_back(std::sqrt(s));
      int64_t d = j - i;
      if (circular_period > 0) {
        d = std::min(d, circular_period - d);
      }
      idx_dist.push_back(static_cast<double>(d));
    }
  }
  return Pearson(emb_dist, idx_dist);
}

double NeighborOrderPreservation(const Tensor& embedding,
                                 int64_t circular_period) {
  TGCRN_CHECK_EQ(embedding.dim(), 2);
  const int64_t n = embedding.size(0);
  const int64_t k = embedding.size(1);
  TGCRN_CHECK_GE(n, 3);
  const float* e = embedding.data();
  int64_t hits = 0;
  for (int64_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int64_t best_j = -1;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double s = 0.0;
      for (int64_t c = 0; c < k; ++c) {
        const double diff = e[i * k + c] - e[j * k + c];
        s += diff * diff;
      }
      if (s < best) {
        best = s;
        best_j = j;
      }
    }
    int64_t d = std::abs(best_j - i);
    if (circular_period > 0) d = std::min(d, circular_period - d);
    if (d == 1) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace viz
}  // namespace tgcrn
