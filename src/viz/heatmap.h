// Copyright 2026 TGCRN Reproduction Authors
// ASCII heat-map rendering for adjacency/OD matrices, so the bench
// harnesses can show the qualitative picture the paper's Fig 11 heat maps
// convey directly in terminal output.
#ifndef TGCRN_VIZ_HEATMAP_H_
#define TGCRN_VIZ_HEATMAP_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace tgcrn {
namespace viz {

struct HeatmapOptions {
  // Glyph ramp from weakest to strongest cell.
  std::string ramp = " .:-=+*#%@";
  // If true, each matrix is normalized by its own max; otherwise all
  // matrices rendered in one call share the global max (comparable cells).
  bool per_matrix_scale = false;
  // Zero out the diagonal before scaling (self-weights usually dominate
  // and wash out the structure).
  bool mask_diagonal = true;
};

// Renders one [N, N] matrix as N lines of N glyphs.
std::string RenderHeatmap(const Tensor& matrix,
                          const HeatmapOptions& options = {});

// Renders several matrices side by side with titles - the layout of the
// paper's Fig 11 panels. All matrices must be square and equally sized.
std::string RenderHeatmapRow(const std::vector<Tensor>& matrices,
                             const std::vector<std::string>& titles,
                             const HeatmapOptions& options = {});

}  // namespace viz
}  // namespace tgcrn

#endif  // TGCRN_VIZ_HEATMAP_H_
