// Copyright 2026 TGCRN Reproduction Authors
// First-order optimizers over ag::Variable parameter lists, plus global
// gradient-norm clipping. Matches the paper's training recipe: Adam with
// L2 penalty 1e-4, initial LR 1e-3 (decayed externally by MultiStepLR).
#ifndef TGCRN_OPTIM_OPTIMIZER_H_
#define TGCRN_OPTIM_OPTIMIZER_H_

#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace tgcrn {
namespace optim {

// Elements per chunk for the parallel parameter-update loops; parameter
// tensors are independent rows of work, so chunking never changes results.
inline constexpr int64_t kOptimizerGrain = 1024;

// Deterministic squared sum of one buffer (the per-parameter piece of the
// global gradient norm). This is the trainer's gradient-stats capture
// point: the value feeds the clip below, the per-epoch grad_norm fields in
// the run report, and — because NaN/Inf propagate through the sum — the
// health monitor's non-finite sentinel, all from a single reduction.
inline double GradSquaredSum(const float* data, int64_t n) {
  return common::DeterministicChunkedSum(
      n, kOptimizerGrain, [data](int64_t begin, int64_t end) {
        double sq = 0.0;
        for (int64_t i = begin; i < end; ++i) {
          sq += static_cast<double>(data[i]) * data[i];
        }
        return sq;
      });
}

// Scales all gradients so their global L2 norm is at most `max_norm`.
// Returns the pre-clip norm. Parameters without gradients are skipped.
// A non-finite return means some gradient element is non-finite; the
// `norm > max_norm` comparison is then false, so the offending gradients
// are left unscaled for the health monitor to inspect.
inline float ClipGradNorm(const std::vector<ag::Variable>& params,
                          float max_norm) {
  // Per-parameter partials via the deterministic chunked reduction, summed
  // in parameter order: the norm is bitwise identical at any thread count.
  double total_sq = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const Tensor& g = p.grad();
    total_sq += GradSquaredSum(g.data(), g.numel());
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params) {
      if (!p.has_grad()) continue;
      // Safe: the grad tensor is owned by the leaf node.
      const_cast<Tensor&>(p.grad()).ScaleInplace(scale);
    }
  }
  return norm;
}

class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  // Applies one update using the accumulated gradients.
  virtual void Step() = 0;

  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  const std::vector<ag::Variable>& params() const { return params_; }

 protected:
  std::vector<ag::Variable> params_;
  float lr_;
};

// Plain SGD with optional momentum.
class SGD : public Optimizer {
 public:
  SGD(std::vector<ag::Variable> params, float lr, float momentum = 0.0f)
      : Optimizer(std::move(params), lr), momentum_(momentum) {
    if (momentum_ > 0.0f) {
      for (const auto& p : params_) {
        velocity_.push_back(Tensor::Zeros(p.value().shape()));
      }
    }
  }

  void Step() override {
    for (size_t i = 0; i < params_.size(); ++i) {
      auto& p = params_[i];
      if (!p.has_grad()) continue;
      Tensor update = p.grad().Clone();
      if (momentum_ > 0.0f) {
        velocity_[i].ScaleInplace(momentum_);
        velocity_[i].AddInplace(update);
        update = velocity_[i].Clone();
      }
      p.SetValue(p.value().Sub(update.MulScalar(lr_)));
    }
  }

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba, 2015) with coupled L2 weight decay (added to the
// gradient, as in torch.optim.Adam's weight_decay).
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f)
      : Optimizer(std::move(params), lr),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps),
        weight_decay_(weight_decay) {
    for (const auto& p : params_) {
      m_.push_back(Tensor::Zeros(p.value().shape()));
      v_.push_back(Tensor::Zeros(p.value().shape()));
    }
  }

  void Step() override {
    ++step_;
    const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
    const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
    for (size_t i = 0; i < params_.size(); ++i) {
      auto& p = params_[i];
      if (!p.has_grad()) continue;
      // m = b1 m + (1-b1) g ; v = b2 v + (1-b2) g^2 ; w -= lr m^ / (sqrt(v^)
      // + eps) -- all in place. The weight decay term is folded into the
      // loop (gj = g + wd * w, the same float expression the old
      // materialized `g.Add(w.MulScalar(wd))` computed per element), and
      // the parameter is updated through mutable_value() instead of a
      // Clone/SetValue round trip: the grad buffer and the weight storage
      // are both stable across steps, so a steady-state step allocates
      // nothing here. Each element updates independently, so the chunked
      // loop is exact at any thread count.
      Tensor& m = m_[i];
      Tensor& v = v_[i];
      float* mp = m.mutable_data();
      float* vp = v.mutable_data();
      const float* gp = p.grad().data();
      const int64_t n = p.grad().numel();
      float* w = p.mutable_value().mutable_data();
      const float beta1 = beta1_, beta2 = beta2_, eps = eps_, lr = lr_;
      const float wd = weight_decay_;
      common::ParallelFor(0, n, kOptimizerGrain, [&](int64_t s, int64_t e) {
        for (int64_t j = s; j < e; ++j) {
          const float gj = wd > 0.0f ? gp[j] + w[j] * wd : gp[j];
          mp[j] = beta1 * mp[j] + (1.0f - beta1) * gj;
          vp[j] = beta2 * vp[j] + (1.0f - beta2) * gj * gj;
          const float m_hat = mp[j] / bias1;
          const float v_hat = vp[j] / bias2;
          w[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
        }
      });
    }
  }

  int64_t step_count() const { return step_; }

  // Persists the moment estimates and step counter so training can resume
  // exactly (the parameters themselves are saved by Module::SaveParameters).
  Status SaveState(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::IOError("cannot open " + path);
    const uint64_t count = m_.size();
    out.write(reinterpret_cast<const char*>(&step_), sizeof(step_));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& list : {&m_, &v_}) {
      for (const Tensor& t : *list) {
        const int64_t n = t.numel();
        out.write(reinterpret_cast<const char*>(&n), sizeof(n));
        out.write(reinterpret_cast<const char*>(t.data()),
                  static_cast<std::streamsize>(n * sizeof(float)));
      }
    }
    if (!out.good()) return Status::IOError("write failed for " + path);
    return Status::OK();
  }

  // Restores state saved by SaveState; the optimizer must be constructed
  // over the same parameter list.
  Status LoadState(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open " + path);
    int64_t step = 0;
    uint64_t count = 0;
    in.read(reinterpret_cast<char*>(&step), sizeof(step));
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (count != m_.size()) {
      return Status::InvalidArgument(
          "state has " + std::to_string(count) + " slots, optimizer has " +
          std::to_string(m_.size()));
    }
    for (auto* list : {&m_, &v_}) {
      for (Tensor& t : *list) {
        int64_t n = 0;
        in.read(reinterpret_cast<char*>(&n), sizeof(n));
        if (n != t.numel()) {
          return Status::InvalidArgument("moment tensor size mismatch");
        }
        in.read(reinterpret_cast<char*>(t.mutable_data()),
                static_cast<std::streamsize>(n * sizeof(float)));
      }
    }
    if (!in.good()) return Status::IOError("truncated state " + path);
    step_ = step;
    return Status::OK();
  }

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

// Multi-milestone learning-rate schedule: lr *= gamma at each milestone
// epoch (the paper decays by 0.3 at epochs {5, 20, 40, 70, 90}).
class MultiStepLR {
 public:
  MultiStepLR(Optimizer* optimizer, std::vector<int64_t> milestones,
              float gamma)
      : optimizer_(optimizer),
        milestones_(std::move(milestones)),
        gamma_(gamma) {}

  // Call once after each epoch with the completed epoch index (0-based).
  void Step(int64_t epoch) {
    for (int64_t m : milestones_) {
      if (epoch + 1 == m) {
        optimizer_->set_lr(optimizer_->lr() * gamma_);
      }
    }
  }

 private:
  Optimizer* optimizer_;
  std::vector<int64_t> milestones_;
  float gamma_;
};

// Early stopping on a validation metric (lower is better), with patience
// matching the paper's setting of 15.
class EarlyStopper {
 public:
  explicit EarlyStopper(int64_t patience) : patience_(patience) {}

  // Returns true if this is a new best value.
  bool Update(float value) {
    if (value < best_) {
      best_ = value;
      bad_epochs_ = 0;
      return true;
    }
    ++bad_epochs_;
    return false;
  }

  bool ShouldStop() const { return bad_epochs_ >= patience_; }
  float best() const { return best_; }

 private:
  int64_t patience_;
  int64_t bad_epochs_ = 0;
  float best_ = std::numeric_limits<float>::infinity();
};

}  // namespace optim
}  // namespace tgcrn

#endif  // TGCRN_OPTIM_OPTIMIZER_H_
