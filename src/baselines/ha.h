// Copyright 2026 TGCRN Reproduction Authors
// Historical Average baseline: forecasts the mean of the training values
// observed at the same (weekday/weekend, slot-of-day) position. This is the
// paper's HA row - a pure seasonality model with no spatial component.
#ifndef TGCRN_BASELINES_HA_H_
#define TGCRN_BASELINES_HA_H_

#include <vector>

#include "data/dataset.h"
#include "metrics/metrics.h"

namespace tgcrn {
namespace baselines {

class HistoricalAverage {
 public:
  // Fits per-(period, slot, node, channel) means over the first `fit_steps`
  // of `data`, where period is weekday vs weekend.
  void Fit(const data::SpatioTemporalData& data, int64_t fit_steps);

  // The average value for (day_of_week, slot, node, channel).
  float Predict(int64_t day_of_week, int64_t slot, int64_t node,
                int64_t channel) const;

  // Evaluates on the test split of `dataset`: per-horizon metrics computed
  // exactly like the neural models'.
  std::vector<metrics::Metrics> EvaluateOnDataset(
      const data::ForecastDataset& dataset,
      const metrics::MetricsOptions& options) const;

 private:
  int64_t steps_per_day_ = 0;
  int64_t num_nodes_ = 0;
  int64_t num_features_ = 0;
  // means_[period][slot * N * d + node * d + channel], period 0 = weekday.
  std::vector<std::vector<float>> means_;
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_HA_H_
