// Copyright 2026 TGCRN Reproduction Authors
#include "baselines/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace tgcrn {
namespace baselines {

namespace {

// Split evaluation sums. With squared loss, gradient g = residual and
// hessian h = 1, so the second-order (XGBoost) gain and the classic
// variance-reduction gain differ only in the lambda/gamma regularizers.
struct SplitStats {
  double sum = 0.0;
  int64_t count = 0;
  double Score(bool xgb, float lambda) const {
    if (count == 0) return 0.0;
    const double denom =
        xgb ? static_cast<double>(count) + lambda : static_cast<double>(count);
    return sum * sum / denom;
  }
};

}  // namespace

int64_t RegressionTree::Build(const std::vector<float>& features,
                              int64_t num_features,
                              const std::vector<float>& targets,
                              std::vector<int64_t>& ids, int64_t depth,
                              const GbdtConfig& config) {
  const int64_t node_id = static_cast<int64_t>(nodes_.size());
  nodes_.emplace_back();

  SplitStats total;
  for (int64_t id : ids) {
    total.sum += targets[id];
    ++total.count;
  }
  const double leaf_denom =
      config.xgboost_mode ? total.count + config.reg_lambda : total.count;
  const float leaf_value =
      total.count > 0 ? static_cast<float>(total.sum / leaf_denom) : 0.0f;
  nodes_[node_id].value = leaf_value;

  if (depth >= config.max_depth ||
      total.count < 2 * config.min_samples_leaf) {
    return node_id;
  }

  // Exact greedy split search over all features.
  double best_gain = config.xgboost_mode ? config.gamma : 1e-12;
  int64_t best_feature = -1;
  float best_threshold = 0.0f;
  const double parent_score =
      total.Score(config.xgboost_mode, config.reg_lambda);
  std::vector<std::pair<float, int64_t>> order(ids.size());
  for (int64_t f = 0; f < num_features; ++f) {
    for (size_t i = 0; i < ids.size(); ++i) {
      order[i] = {features[ids[i] * num_features + f], ids[i]};
    }
    std::sort(order.begin(), order.end());
    SplitStats left;
    for (size_t i = 0; i + 1 < order.size(); ++i) {
      left.sum += targets[order[i].second];
      ++left.count;
      // Can't split between equal feature values.
      if (order[i].first == order[i + 1].first) continue;
      const int64_t right_count = total.count - left.count;
      if (left.count < config.min_samples_leaf ||
          right_count < config.min_samples_leaf) {
        continue;
      }
      SplitStats right{total.sum - left.sum, right_count};
      const double gain =
          left.Score(config.xgboost_mode, config.reg_lambda) +
          right.Score(config.xgboost_mode, config.reg_lambda) - parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5f * (order[i].first + order[i + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_id;  // no useful split

  std::vector<int64_t> left_ids, right_ids;
  for (int64_t id : ids) {
    if (features[id * num_features + best_feature] <= best_threshold) {
      left_ids.push_back(id);
    } else {
      right_ids.push_back(id);
    }
  }
  // Free the parent's id list before recursing to bound memory.
  ids.clear();
  ids.shrink_to_fit();

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int64_t left_child =
      Build(features, num_features, targets, left_ids, depth + 1, config);
  nodes_[node_id].left = left_child;
  const int64_t right_child =
      Build(features, num_features, targets, right_ids, depth + 1, config);
  nodes_[node_id].right = right_child;
  return node_id;
}

void RegressionTree::Fit(const std::vector<float>& features,
                         int64_t num_features,
                         const std::vector<float>& targets,
                         const std::vector<int64_t>& sample_ids,
                         const GbdtConfig& config) {
  nodes_.clear();
  std::vector<int64_t> ids = sample_ids;
  Build(features, num_features, targets, ids, 0, config);
}

float RegressionTree::Predict(const float* row) const {
  TGCRN_CHECK(!nodes_.empty());
  int64_t node = 0;
  while (nodes_[node].feature >= 0) {
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

void Gbdt::Fit(const std::vector<float>& features, int64_t num_features,
               const std::vector<float>& targets) {
  TGCRN_CHECK_GT(num_features, 0);
  const int64_t n = static_cast<int64_t>(targets.size());
  TGCRN_CHECK_EQ(static_cast<int64_t>(features.size()), n * num_features);
  num_features_ = num_features;
  base_score_ = 0.0f;
  for (float t : targets) base_score_ += t;
  base_score_ /= std::max<int64_t>(n, 1);

  std::vector<float> residuals(targets.size());
  std::vector<float> predictions(targets.size(), base_score_);
  Rng rng(config_.seed);
  trees_.clear();
  std::vector<int64_t> all_ids(n);
  std::iota(all_ids.begin(), all_ids.end(), 0);

  for (int64_t round = 0; round < config_.num_rounds; ++round) {
    for (int64_t i = 0; i < n; ++i) {
      residuals[i] = targets[i] - predictions[i];
    }
    std::vector<int64_t> ids;
    if (config_.subsample < 1.0f) {
      for (int64_t i = 0; i < n; ++i) {
        if (rng.NextDouble() < config_.subsample) ids.push_back(i);
      }
      if (ids.empty()) ids = all_ids;
    } else {
      ids = all_ids;
    }
    RegressionTree tree;
    tree.Fit(features, num_features, residuals, ids, config_);
    for (int64_t i = 0; i < n; ++i) {
      predictions[i] +=
          config_.learning_rate * tree.Predict(&features[i * num_features]);
    }
    trees_.push_back(std::move(tree));
  }
}

float Gbdt::Predict(const float* row) const {
  float out = base_score_;
  for (const auto& tree : trees_) {
    out += config_.learning_rate * tree.Predict(row);
  }
  return out;
}

std::vector<float> GbdtForecaster::BuildFeatures(const data::Batch& batch,
                                                 int64_t steps_per_day,
                                                 int64_t* num_features) {
  const int64_t b = batch.batch_size();
  const int64_t p = batch.x.size(1);
  const int64_t n = batch.x.size(2);
  const int64_t d = batch.x.size(3);
  // lags + slot, sin, cos, dow, weekend, node id
  const int64_t f = p * d + 6;
  *num_features = f;
  std::vector<float> rows(static_cast<size_t>(b) * n * f);
  for (int64_t s = 0; s < b; ++s) {
    const int64_t last_slot = batch.x_slots[s].back();
    const int64_t dow = batch.x_days[s].back();
    // Raw slot for direct ordinal splits plus the cyclic encoding so
    // midnight wraps cleanly.
    const float angle = 2.0f * static_cast<float>(M_PI) *
                        static_cast<float>(last_slot) /
                        static_cast<float>(steps_per_day);
    for (int64_t i = 0; i < n; ++i) {
      float* row = &rows[(s * n + i) * f];
      int64_t k = 0;
      for (int64_t t = 0; t < p; ++t) {
        for (int64_t c = 0; c < d; ++c) {
          row[k++] = batch.x.at({s, t, i, c});
        }
      }
      row[k++] = static_cast<float>(last_slot);
      row[k++] = std::sin(angle);
      row[k++] = std::cos(angle);
      row[k++] = static_cast<float>(dow);
      row[k++] = dow >= 5 ? 1.0f : 0.0f;
      row[k++] = static_cast<float>(i);
    }
  }
  return rows;
}

void GbdtForecaster::Fit(const data::ForecastDataset& dataset) {
  const int64_t num = dataset.NumTrainSamples();
  std::vector<int64_t> ids(num);
  std::iota(ids.begin(), ids.end(), 0);
  const data::Batch batch =
      dataset.MakeBatch(data::ForecastDataset::Split::kTrain, ids);
  int64_t f = 0;
  const std::vector<float> features =
      BuildFeatures(batch, dataset.steps_per_day(), &f);
  const int64_t n = batch.x.size(2);
  horizon_ = batch.y.size(1);
  channels_ = batch.y.size(3);

  models_.clear();
  for (int64_t q = 0; q < horizon_; ++q) {
    for (int64_t c = 0; c < channels_; ++c) {
      std::vector<float> targets(static_cast<size_t>(num) * n);
      for (int64_t s = 0; s < num; ++s) {
        for (int64_t i = 0; i < n; ++i) {
          // Train in scaled space like the neural models.
          targets[s * n + i] = batch.y_scaled.at({s, q, i, c});
        }
      }
      Gbdt model(config_);
      model.Fit(features, f, targets);
      models_.push_back(std::move(model));
    }
  }
}

std::vector<metrics::Metrics> GbdtForecaster::EvaluateOnDataset(
    const data::ForecastDataset& dataset, data::ForecastDataset::Split split,
    const metrics::MetricsOptions& options) const {
  TGCRN_CHECK(!models_.empty()) << "Fit() before EvaluateOnDataset()";
  int64_t num = 0;
  switch (split) {
    case data::ForecastDataset::Split::kTrain:
      num = dataset.NumTrainSamples();
      break;
    case data::ForecastDataset::Split::kVal:
      num = dataset.NumValSamples();
      break;
    case data::ForecastDataset::Split::kTest:
      num = dataset.NumTestSamples();
      break;
  }
  std::vector<int64_t> ids(num);
  std::iota(ids.begin(), ids.end(), 0);
  const data::Batch batch = dataset.MakeBatch(split, ids);
  int64_t f = 0;
  const std::vector<float> features =
      BuildFeatures(batch, dataset.steps_per_day(), &f);
  const int64_t n = batch.x.size(2);
  Tensor pred = Tensor::Zeros(batch.y.shape());
  for (int64_t s = 0; s < num; ++s) {
    for (int64_t i = 0; i < n; ++i) {
      const float* row = &features[(s * n + i) * f];
      for (int64_t q = 0; q < horizon_; ++q) {
        for (int64_t c = 0; c < channels_; ++c) {
          pred.set({s, q, i, c},
                   models_[q * channels_ + c].Predict(row));
        }
      }
    }
  }
  // Back to raw space for metric parity with the neural models.
  Tensor raw_pred = dataset.scaler().InverseTransform(pred);
  return metrics::EvaluatePerHorizon(raw_pred, batch.y, options);
}

}  // namespace baselines
}  // namespace tgcrn
