// Copyright 2026 TGCRN Reproduction Authors
// GTS baseline [20] ("-lite"): graph structure learned from the *training
// data as a whole*. Per-node feature vectors (the mean daily profile of the
// training series) pass through an MLP; pairwise concatenations map to edge
// logits, and the sigmoid-weighted graph feeds a graph-convolutional GRU.
// The original's Gumbel-softmax discrete sampling is replaced by its
// deterministic sigmoid expectation (at these sizes the expectation is what
// the sampler converges to; this removes sampling variance, not capacity).
#ifndef TGCRN_BASELINES_GTS_H_
#define TGCRN_BASELINES_GTS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/graph_gru_cell.h"
#include "core/forecast_model.h"
#include "nn/linear.h"

namespace tgcrn {
namespace baselines {

class Gts : public core::ForecastModel {
 public:
  struct Config {
    int64_t num_nodes = 0;
    int64_t input_dim = 2;
    int64_t output_dim = 2;
    int64_t horizon = 4;
    int64_t hidden_dim = 16;
    int64_t num_layers = 2;
    int64_t feature_dim = 16;  // node-feature MLP width
  };

  // `node_features`: [N, F] per-node statistics of the training data
  // (e.g. the mean daily profile; see MakeProfileFeatures below).
  Gts(const Config& config, const Tensor& node_features, Rng* rng)
      : config_(config), node_features_(node_features) {
    TGCRN_CHECK_EQ(node_features.size(0), config.num_nodes);
    feature_mlp_ = std::make_unique<nn::Linear>(
        node_features.size(1), config.feature_dim, rng);
    RegisterModule("feature_mlp", feature_mlp_.get());
    edge_mlp1_ = std::make_unique<nn::Linear>(2 * config.feature_dim,
                                              config.feature_dim, rng);
    RegisterModule("edge_mlp1", edge_mlp1_.get());
    edge_mlp2_ = std::make_unique<nn::Linear>(config.feature_dim, 1, rng);
    RegisterModule("edge_mlp2", edge_mlp2_.get());
    for (int64_t l = 0; l < config.num_layers; ++l) {
      cells_.push_back(std::make_unique<GraphGRUCell>(
          l == 0 ? config.input_dim : config.hidden_dim, config.hidden_dim,
          /*num_supports=*/1, rng, /*include_identity=*/true));
      RegisterModule("cell" + std::to_string(l), cells_.back().get());
    }
    head_ = std::make_unique<nn::Linear>(
        config.hidden_dim, config.horizon * config.output_dim, rng);
    RegisterModule("head", head_.get());
  }

  // Builds the learned (input-independent) graph; exposed for analysis.
  ag::Variable LearnGraph() const {
    const int64_t n = config_.num_nodes;
    ag::Variable h =
        ag::Relu(feature_mlp_->Forward(ag::Variable(node_features_)));
    // Pairwise concatenation [h_i ; h_j] for all (i, j).
    ag::Variable hi = ag::BroadcastTo(ag::Unsqueeze(h, 1),
                                      {n, n, config_.feature_dim});
    ag::Variable hj = ag::BroadcastTo(ag::Unsqueeze(h, 0),
                                      {n, n, config_.feature_dim});
    ag::Variable pair = ag::Concat({hi, hj}, -1);  // [N, N, 2F]
    ag::Variable logits = ag::Squeeze(
        edge_mlp2_->Forward(ag::Relu(edge_mlp1_->Forward(pair))), -1);
    ag::Variable weights = ag::Sigmoid(logits);  // [N, N]
    // Row-normalize into an aggregation operator.
    ag::Variable row_sum = ag::Sum(weights, -1, /*keepdim=*/true);
    return ag::Div(weights, ag::AddScalar(row_sum, 1e-6f));
  }

  ag::Variable Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size();
    const int64_t p = batch.x.size(1);
    const int64_t n = config_.num_nodes;
    ag::Variable adj = LearnGraph();
    std::vector<ag::Variable> hidden(config_.num_layers);
    for (auto& h : hidden) {
      h = ag::Variable(Tensor::Zeros({b, n, config_.hidden_dim}));
    }
    ag::Variable x_all{batch.x};
    for (int64_t t = 0; t < p; ++t) {
      ag::Variable input = ag::Squeeze(ag::Slice(x_all, 1, t, t + 1), 1);
      for (int64_t l = 0; l < config_.num_layers; ++l) {
        input = cells_[l]->Forward(input, hidden[l], {adj});
        hidden[l] = input;
      }
    }
    ag::Variable out = head_->Forward(hidden.back());
    out = ag::Reshape(out, {b, n, config_.horizon, config_.output_dim});
    return ag::Permute(out, {0, 2, 1, 3});
  }

  std::string name() const override { return "GTS"; }

  // Helper: mean daily profile features [N, bins * d] from raw data.
  static Tensor MakeProfileFeatures(const data::SpatioTemporalData& data,
                                    int64_t fit_steps, int64_t bins) {
    const int64_t n = data.num_nodes();
    const int64_t d = data.num_features();
    const int64_t spd = data.steps_per_day;
    Tensor out = Tensor::Zeros({n, bins * d});
    std::vector<int64_t> counts(bins, 0);
    for (int64_t t = 0; t < fit_steps; ++t) {
      const int64_t bin = data.slot_of_day[t] * bins / spd;
      ++counts[bin];
      for (int64_t i = 0; i < n; ++i) {
        for (int64_t c = 0; c < d; ++c) {
          out.set({i, bin * d + c}, out.at({i, bin * d + c}) +
                                        data.values.at({t, i, c}));
        }
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t bin = 0; bin < bins; ++bin) {
        for (int64_t c = 0; c < d; ++c) {
          if (counts[bin] > 0) {
            out.set({i, bin * d + c},
                    out.at({i, bin * d + c}) / counts[bin]);
          }
        }
      }
    }
    // Standardize features so the MLP starts in a sane range.
    const float mean = out.MeanAll();
    Tensor centered = out.AddScalar(-mean);
    const float std =
        std::sqrt(centered.Mul(centered).MeanAll()) + 1e-6f;
    return centered.MulScalar(1.0f / std);
  }

 private:
  Config config_;
  Tensor node_features_;
  std::unique_ptr<nn::Linear> feature_mlp_;
  std::unique_ptr<nn::Linear> edge_mlp1_;
  std::unique_ptr<nn::Linear> edge_mlp2_;
  std::vector<std::unique_ptr<GraphGRUCell>> cells_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_GTS_H_
