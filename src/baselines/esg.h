// Copyright 2026 TGCRN Reproduction Authors
// ESG baseline [32] ("-lite"): evolving graph structure learning. A node-
// level GRU evolves per-node embeddings from the input stream; at every
// step the current embeddings define the graph softmax(relu(e_t e_t^T)),
// which drives a graph-convolutional GRU over the series. This is the
// "dynamic graph" representative of Table II: the structure changes with
// the hidden state but has no explicit notion of time-of-day, trend or
// periodicity - exactly the contrast the paper draws with TagSL. The
// original's multi-scale dilated pyramid is collapsed to a single scale at
// this sequence length (P <= 12), which the dilation schedule would not
// even fill.
#ifndef TGCRN_BASELINES_ESG_H_
#define TGCRN_BASELINES_ESG_H_

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "baselines/graph_gru_cell.h"
#include "core/forecast_model.h"
#include "nn/linear.h"
#include "nn/rnn_cells.h"

namespace tgcrn {
namespace baselines {

class Esg : public core::ForecastModel {
 public:
  struct Config {
    int64_t num_nodes = 0;
    int64_t input_dim = 2;
    int64_t output_dim = 2;
    int64_t horizon = 4;
    int64_t hidden_dim = 16;
    int64_t num_layers = 2;
    int64_t graph_embed_dim = 10;  // evolving node-embedding width
  };

  Esg(const Config& config, Rng* rng) : config_(config) {
    // Static component of the evolving embeddings.
    static_embed_ = RegisterParameter(
        "static_embed", nn::NormalInit(
            {config.num_nodes, config.graph_embed_dim}, 0.3f, rng));
    evolve_cell_ = std::make_unique<nn::GRUCell>(
        config.input_dim, config.graph_embed_dim, rng);
    RegisterModule("evolve_cell", evolve_cell_.get());
    for (int64_t l = 0; l < config.num_layers; ++l) {
      cells_.push_back(std::make_unique<GraphGRUCell>(
          l == 0 ? config.input_dim : config.hidden_dim, config.hidden_dim,
          /*num_supports=*/1, rng, /*include_identity=*/true));
      RegisterModule("cell" + std::to_string(l), cells_.back().get());
    }
    // Skip path, as in the original's residual/skip ST blocks: the head
    // sees the final state plus the average of all per-step outputs.
    head_ = std::make_unique<nn::Linear>(
        2 * config.hidden_dim, config.horizon * config.output_dim, rng);
    RegisterModule("head", head_.get());
  }

  ag::Variable Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size();
    const int64_t p = batch.x.size(1);
    const int64_t n = config_.num_nodes;
    const float scale =
        1.0f / std::sqrt(static_cast<float>(config_.graph_embed_dim));

    std::vector<ag::Variable> hidden(config_.num_layers);
    for (auto& h : hidden) {
      h = ag::Variable(Tensor::Zeros({b, n, config_.hidden_dim}));
    }
    // Evolving embeddings start from the shared static table.
    ag::Variable embed = ag::BroadcastTo(
        ag::Unsqueeze(static_embed_, 0), {b, n, config_.graph_embed_dim});
    ag::Variable x_all{batch.x};
    ag::Variable skip_sum;
    for (int64_t t = 0; t < p; ++t) {
      ag::Variable input = ag::Squeeze(ag::Slice(x_all, 1, t, t + 1), 1);
      // Evolve node embeddings with the new observations...
      embed = evolve_cell_->Forward(input, embed);  // [B, N, De]
      // ...and derive this step's graph from the static identity plus the
      // evolving state (the residual keeps the graph well-formed early in
      // training, before the evolution GRU has learned anything).
      ag::Variable graph_embed = ag::Add(embed, static_embed_);
      ag::Variable adj = ag::Softmax(
          ag::Relu(ag::MulScalar(
              ag::Matmul(graph_embed,
                         ag::Transpose(graph_embed, -2, -1)),
              scale)),
          -1);  // [B, N, N]
      for (int64_t l = 0; l < config_.num_layers; ++l) {
        input = cells_[l]->Forward(input, hidden[l], {adj});
        hidden[l] = input;
      }
      skip_sum = skip_sum.defined() ? ag::Add(skip_sum, hidden.back())
                                    : hidden.back();
    }
    ag::Variable skip_mean =
        ag::MulScalar(skip_sum, 1.0f / static_cast<float>(p));
    ag::Variable out =
        head_->Forward(ag::Concat({hidden.back(), skip_mean}, -1));
    out = ag::Reshape(out, {b, n, config_.horizon, config_.output_dim});
    return ag::Permute(out, {0, 2, 1, 3});
  }

  std::string name() const override { return "ESG"; }

 private:
  Config config_;
  ag::Variable static_embed_;
  std::unique_ptr<nn::GRUCell> evolve_cell_;
  std::vector<std::unique_ptr<GraphGRUCell>> cells_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_ESG_H_
