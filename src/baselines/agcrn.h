// Copyright 2026 TGCRN Reproduction Authors
// AGCRN baseline [2]: node-adaptive graph convolutional recurrent network
// on a *static* self-learned graph softmax(relu(E E^T)). Mechanically this
// is exactly TGCRN with time-awareness removed (the paper's own "w/o tagsl"
// ablation replaces TagSL with AGCRN's mechanism), so the baseline reuses
// the core model with the time-aware pieces switched off and, as in the
// original AGCRN, a direct multi-step output head instead of a decoder.
#ifndef TGCRN_BASELINES_AGCRN_H_
#define TGCRN_BASELINES_AGCRN_H_

#include <string>

#include "core/tgcrn.h"

namespace tgcrn {
namespace baselines {

class Agcrn : public core::TGCRN {
 public:
  struct Config {
    int64_t num_nodes = 0;
    int64_t input_dim = 2;
    int64_t output_dim = 2;
    int64_t horizon = 4;
    int64_t hidden_dim = 16;
    int64_t num_layers = 2;
    int64_t node_embed_dim = 10;
  };

  Agcrn(const Config& config, Rng* rng)
      : core::TGCRN(ToTgcrnConfig(config), rng) {}

  std::string name() const override { return "AGCRN"; }

 private:
  static core::TGCRNConfig ToTgcrnConfig(const Config& config) {
    core::TGCRNConfig out;
    out.num_nodes = config.num_nodes;
    out.input_dim = config.input_dim;
    out.output_dim = config.output_dim;
    out.horizon = config.horizon;
    out.hidden_dim = config.hidden_dim;
    out.num_layers = config.num_layers;
    out.node_embed_dim = config.node_embed_dim;
    out.use_tagsl = false;            // static self-learned graph
    out.use_tdl = false;
    out.use_pdf = false;
    out.use_encoder_decoder = false;  // AGCRN outputs all steps at once
    return out;
  }
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_AGCRN_H_
