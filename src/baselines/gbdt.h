// Copyright 2026 TGCRN Reproduction Authors
// Gradient-boosted regression trees, from scratch: the paper's GBDT [8]
// and XGBoost [5] baselines. Both share the same booster; the XGBoost mode
// switches the split criterion to the second-order gain with L2 leaf
// regularization (the scalable-machinery of the real system - column
// blocks, sparsity handling, distributed training - is irrelevant at this
// data scale and omitted).
#ifndef TGCRN_BASELINES_GBDT_H_
#define TGCRN_BASELINES_GBDT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "metrics/metrics.h"

namespace tgcrn {
namespace baselines {

struct GbdtConfig {
  int64_t num_rounds = 20;
  int64_t max_depth = 3;
  float learning_rate = 0.15f;
  int64_t min_samples_leaf = 8;
  // XGBoost mode: second-order gain with L2 leaf penalty `reg_lambda` and
  // minimum split gain `gamma`.
  bool xgboost_mode = false;
  float reg_lambda = 1.0f;
  float gamma = 0.0f;
  // Row subsampling per round (stochastic gradient boosting).
  float subsample = 1.0f;
  uint64_t seed = 17;
};

// A single fitted regression tree (axis-aligned splits, constant leaves).
class RegressionTree {
 public:
  // Fits to (features, targets) restricted to `sample_ids`.
  // `features` is row-major [num_samples x num_features].
  void Fit(const std::vector<float>& features, int64_t num_features,
           const std::vector<float>& targets,
           const std::vector<int64_t>& sample_ids, const GbdtConfig& config);

  float Predict(const float* row) const;
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  struct Node {
    int64_t feature = -1;  // -1 => leaf
    float threshold = 0.0f;
    int64_t left = -1;
    int64_t right = -1;
    float value = 0.0f;
  };
  int64_t Build(const std::vector<float>& features, int64_t num_features,
                const std::vector<float>& targets,
                std::vector<int64_t>& ids, int64_t depth,
                const GbdtConfig& config);
  std::vector<Node> nodes_;
};

// The boosting ensemble for a single scalar target.
class Gbdt {
 public:
  explicit Gbdt(const GbdtConfig& config) : config_(config) {}

  void Fit(const std::vector<float>& features, int64_t num_features,
           const std::vector<float>& targets);

  float Predict(const float* row) const;

  int64_t num_trees() const { return static_cast<int64_t>(trees_.size()); }

 private:
  GbdtConfig config_;
  float base_score_ = 0.0f;
  int64_t num_features_ = 0;
  std::vector<RegressionTree> trees_;
};

// Forecasting adapter: trains one booster per (horizon, channel) on lag
// features [P*d lags, sin/cos slot, day-of-week, weekend flag, node id]
// extracted per (window, node) and evaluates like the neural models.
class GbdtForecaster {
 public:
  explicit GbdtForecaster(const GbdtConfig& config) : config_(config) {}

  void Fit(const data::ForecastDataset& dataset);

  // Per-horizon metrics on the given split.
  std::vector<metrics::Metrics> EvaluateOnDataset(
      const data::ForecastDataset& dataset,
      data::ForecastDataset::Split split,
      const metrics::MetricsOptions& options) const;

 private:
  // Builds the feature matrix for a batch; rows are (sample, node) pairs.
  // `steps_per_day` scales the cyclic slot encoding.
  static std::vector<float> BuildFeatures(const data::Batch& batch,
                                          int64_t steps_per_day,
                                          int64_t* num_features);

  GbdtConfig config_;
  int64_t horizon_ = 0;
  int64_t channels_ = 0;
  std::vector<Gbdt> models_;  // horizon-major: [q * channels + c]
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_GBDT_H_
