// Copyright 2026 TGCRN Reproduction Authors
// Transformer baselines.
//
// InformerLite [37]: temporal transformer over the flattened sensor vector.
// Full attention replaces the original's ProbSparse mechanism - at the
// horizons used in the paper's traffic setting (P <= 12) ProbSparse reduces
// to full attention; the distilling pyramid likewise targets sequence
// lengths in the hundreds. Multi-step output comes from learned horizon
// queries cross-attending to the encoder, mirroring Informer's one-shot
// generative decoder.
//
// CrossformerLite [34]: two-stage attention per layer - across time within
// each series, then across series (the paper's cross-dimension stage) -
// which is the mechanism distinguishing Crossformer; its segment merging is
// an efficiency device for long sequences and is omitted.
#ifndef TGCRN_BASELINES_TRANSFORMERS_H_
#define TGCRN_BASELINES_TRANSFORMERS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/forecast_model.h"
#include "nn/attention.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"

namespace tgcrn {
namespace baselines {

// One pre-norm transformer block: x + MHA(LN(x)), then x + FFN(LN(x)).
class TransformerBlock : public nn::Module {
 public:
  TransformerBlock(int64_t d_model, int64_t num_heads, Rng* rng)
      : attn_(d_model, num_heads, rng),
        norm1_(d_model),
        norm2_(d_model),
        ff1_(d_model, 2 * d_model, rng),
        ff2_(2 * d_model, d_model, rng) {
    RegisterModule("attn", &attn_);
    RegisterModule("norm1", &norm1_);
    RegisterModule("norm2", &norm2_);
    RegisterModule("ff1", &ff1_);
    RegisterModule("ff2", &ff2_);
  }

  ag::Variable Forward(const ag::Variable& x) const {
    ag::Variable n1 = norm1_.Forward(x);
    ag::Variable a = ag::Add(x, attn_.Forward(n1, n1, n1));
    ag::Variable n2 = norm2_.Forward(a);
    return ag::Add(a, ff2_.Forward(ag::Relu(ff1_.Forward(n2))));
  }

  // Cross-attention flavour used by the decoder queries.
  ag::Variable ForwardCross(const ag::Variable& q,
                            const ag::Variable& kv) const {
    ag::Variable a = ag::Add(q, attn_.Forward(norm1_.Forward(q), kv, kv));
    ag::Variable n2 = norm2_.Forward(a);
    return ag::Add(a, ff2_.Forward(ag::Relu(ff1_.Forward(n2))));
  }

 private:
  nn::MultiHeadAttention attn_;
  nn::LayerNorm norm1_;
  nn::LayerNorm norm2_;
  nn::Linear ff1_;
  nn::Linear ff2_;
};

class InformerLite : public core::ForecastModel {
 public:
  struct Config {
    int64_t num_nodes = 0;
    int64_t input_dim = 2;
    int64_t output_dim = 2;
    int64_t horizon = 4;
    int64_t input_steps = 4;
    int64_t d_model = 32;
    int64_t num_heads = 4;
    int64_t num_layers = 2;
  };

  InformerLite(const Config& config, Rng* rng) : config_(config) {
    input_proj_ = std::make_unique<nn::Linear>(
        config.num_nodes * config.input_dim, config.d_model, rng);
    RegisterModule("input_proj", input_proj_.get());
    pos_embed_ = RegisterParameter(
        "pos_embed",
        nn::NormalInit({config.input_steps, config.d_model}, 0.1f, rng));
    query_embed_ = RegisterParameter(
        "query_embed",
        nn::NormalInit({config.horizon, config.d_model}, 0.1f, rng));
    for (int64_t l = 0; l < config.num_layers; ++l) {
      encoder_.push_back(std::make_unique<TransformerBlock>(
          config.d_model, config.num_heads, rng));
      RegisterModule("enc" + std::to_string(l), encoder_.back().get());
    }
    decoder_ = std::make_unique<TransformerBlock>(config.d_model,
                                                  config.num_heads, rng);
    RegisterModule("decoder", decoder_.get());
    head_ = std::make_unique<nn::Linear>(
        config.d_model, config.num_nodes * config.output_dim, rng);
    RegisterModule("head", head_.get());
  }

  ag::Variable Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size();
    const int64_t p = batch.x.size(1);
    TGCRN_CHECK_EQ(p, config_.input_steps);
    ag::Variable x = ag::Reshape(
        ag::Variable(batch.x),
        {b, p, config_.num_nodes * config_.input_dim});
    x = ag::Add(input_proj_->Forward(x), pos_embed_);  // [B, P, dm]
    for (const auto& block : encoder_) x = block->Forward(x);
    ag::Variable queries = ag::BroadcastTo(
        ag::Unsqueeze(query_embed_, 0),
        {b, config_.horizon, config_.d_model});
    ag::Variable dec = decoder_->ForwardCross(queries, x);  // [B, Q, dm]
    ag::Variable out = head_->Forward(dec);  // [B, Q, N*d]
    return ag::Reshape(out, {b, config_.horizon, config_.num_nodes,
                             config_.output_dim});
  }

  std::string name() const override { return "Informer"; }

 private:
  Config config_;
  std::unique_ptr<nn::Linear> input_proj_;
  ag::Variable pos_embed_;
  ag::Variable query_embed_;
  std::vector<std::unique_ptr<TransformerBlock>> encoder_;
  std::unique_ptr<TransformerBlock> decoder_;
  std::unique_ptr<nn::Linear> head_;
};

class CrossformerLite : public core::ForecastModel {
 public:
  struct Config {
    int64_t num_nodes = 0;
    int64_t input_dim = 2;
    int64_t output_dim = 2;
    int64_t horizon = 4;
    int64_t input_steps = 4;
    int64_t d_model = 24;
    int64_t num_heads = 4;
    int64_t num_layers = 2;
  };

  CrossformerLite(const Config& config, Rng* rng) : config_(config) {
    input_proj_ =
        std::make_unique<nn::Linear>(config.input_dim, config.d_model, rng);
    RegisterModule("input_proj", input_proj_.get());
    pos_embed_ = RegisterParameter(
        "pos_embed",
        nn::NormalInit({config.input_steps, config.d_model}, 0.1f, rng));
    node_embed_ = RegisterParameter(
        "node_embed",
        nn::NormalInit({config.num_nodes, config.d_model}, 0.1f, rng));
    for (int64_t l = 0; l < config.num_layers; ++l) {
      time_blocks_.push_back(std::make_unique<TransformerBlock>(
          config.d_model, config.num_heads, rng));
      RegisterModule("time" + std::to_string(l), time_blocks_.back().get());
      node_blocks_.push_back(std::make_unique<TransformerBlock>(
          config.d_model, config.num_heads, rng));
      RegisterModule("node" + std::to_string(l), node_blocks_.back().get());
    }
    head_ = std::make_unique<nn::Linear>(
        config.d_model, config.horizon * config.output_dim, rng);
    RegisterModule("head", head_.get());
  }

  ag::Variable Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size();
    const int64_t p = batch.x.size(1);
    const int64_t n = config_.num_nodes;
    const int64_t dm = config_.d_model;
    // [B, P, N, d] -> [B, P, N, dm] with time and node embeddings added.
    ag::Variable x = input_proj_->Forward(ag::Variable(batch.x));
    x = ag::Add(x, ag::Reshape(pos_embed_, {1, p, 1, dm}));
    x = ag::Add(x, ag::Reshape(node_embed_, {1, 1, n, dm}));
    for (size_t l = 0; l < time_blocks_.size(); ++l) {
      // Stage 1: attention across time, nodes folded into the batch.
      ag::Variable by_node =
          ag::Reshape(ag::Permute(x, {0, 2, 1, 3}), {b * n, p, dm});
      by_node = time_blocks_[l]->Forward(by_node);
      x = ag::Permute(ag::Reshape(by_node, {b, n, p, dm}), {0, 2, 1, 3});
      // Stage 2: attention across nodes, time folded into the batch.
      ag::Variable by_time = ag::Reshape(x, {b * p, n, dm});
      by_time = node_blocks_[l]->Forward(by_time);
      x = ag::Reshape(by_time, {b, p, n, dm});
    }
    // Forecast from the final time step's node representations.
    ag::Variable last = ag::Squeeze(ag::Slice(x, 1, p - 1, p), 1);
    ag::Variable out = head_->Forward(last);  // [B, N, Q*d]
    out = ag::Reshape(out, {b, n, config_.horizon, config_.output_dim});
    return ag::Permute(out, {0, 2, 1, 3});
  }

  std::string name() const override { return "Crossformer"; }

 private:
  Config config_;
  std::unique_ptr<nn::Linear> input_proj_;
  ag::Variable pos_embed_;
  ag::Variable node_embed_;
  std::vector<std::unique_ptr<TransformerBlock>> time_blocks_;
  std::vector<std::unique_ptr<TransformerBlock>> node_blocks_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_TRANSFORMERS_H_
