// Copyright 2026 TGCRN Reproduction Authors
// FC-LSTM baseline [23]: a fully connected sequence-to-sequence LSTM that
// treats the whole sensor network as one flat feature vector per step -
// temporal modelling only, no explicit spatial structure.
#ifndef TGCRN_BASELINES_FC_LSTM_H_
#define TGCRN_BASELINES_FC_LSTM_H_

#include <string>

#include "core/forecast_model.h"
#include "nn/linear.h"
#include "nn/rnn_cells.h"

namespace tgcrn {
namespace baselines {

class FcLstm : public core::ForecastModel {
 public:
  struct Config {
    int64_t num_nodes = 0;
    int64_t input_dim = 2;
    int64_t output_dim = 2;
    int64_t horizon = 4;
    int64_t hidden_dim = 64;
  };

  FcLstm(const Config& config, Rng* rng)
      : config_(config),
        encoder_(config.num_nodes * config.input_dim, config.hidden_dim,
                 rng),
        decoder_(config.num_nodes * config.output_dim, config.hidden_dim,
                 rng),
        head_(config.hidden_dim, config.num_nodes * config.output_dim, rng) {
    RegisterModule("encoder", &encoder_);
    RegisterModule("decoder", &decoder_);
    RegisterModule("head", &head_);
  }

  ag::Variable Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size();
    const int64_t p = batch.x.size(1);
    const int64_t n = config_.num_nodes;
    ag::Variable x_all{batch.x};
    auto state = encoder_.InitialState({b});
    for (int64_t t = 0; t < p; ++t) {
      ag::Variable step = ag::Reshape(
          ag::Squeeze(ag::Slice(x_all, 1, t, t + 1), 1),
          {b, n * config_.input_dim});
      state = encoder_.Forward(step, state);
    }
    ag::Variable input{Tensor::Zeros({b, n * config_.output_dim})};
    std::vector<ag::Variable> outputs;
    for (int64_t q = 0; q < config_.horizon; ++q) {
      state = decoder_.Forward(input, state);
      ag::Variable y = head_.Forward(state.h);
      outputs.push_back(
          ag::Reshape(y, {b, n, config_.output_dim}));
      input = y;
    }
    return ag::Stack(outputs, 1);
  }

  std::string name() const override { return "FC-LSTM"; }

 private:
  Config config_;
  nn::LSTMCell encoder_;
  nn::LSTMCell decoder_;
  nn::Linear head_;
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_FC_LSTM_H_
