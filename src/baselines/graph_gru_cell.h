// Copyright 2026 TGCRN Reproduction Authors
// A graph-convolutional GRU cell with weights shared across nodes, the
// common recurrent core of DCRNN, PVCGN, CCRNN, GTS and ESG (each differs
// in where its graph supports come from). Each gate aggregates [x ; h]
// over every support and mixes the concatenated aggregations linearly:
//   z, r = sigmoid(Linear(concat_k S_k [x ; h]))
//   c    = tanh  (Linear(concat_k S_k [x ; r .* h]))
//   h'   = (1 - z) .* h + z .* c
// Unlike core::GCGRUCell (the paper's node-adaptive variant), the weights
// here are shared across nodes, as in the original baselines.
#ifndef TGCRN_BASELINES_GRAPH_GRU_CELL_H_
#define TGCRN_BASELINES_GRAPH_GRU_CELL_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace tgcrn {
namespace baselines {

class GraphGRUCell : public nn::Module {
 public:
  // When `include_identity` is set, the gates additionally see the
  // un-mixed [x ; h] (equivalent to an implicit identity support, as in
  // GCN's A + I and DCRNN's order-0 diffusion term). Callers whose support
  // list already contains I (e.g. DCRNN's DiffusionSupports) leave it off.
  GraphGRUCell(int64_t input_dim, int64_t hidden_dim, int64_t num_supports,
               Rng* rng, bool include_identity = false)
      : hidden_dim_(hidden_dim),
        num_supports_(num_supports),
        include_identity_(include_identity),
        gates_((input_dim + hidden_dim) *
                   (num_supports + (include_identity ? 1 : 0)),
               2 * hidden_dim, rng),
        candidate_((input_dim + hidden_dim) *
                       (num_supports + (include_identity ? 1 : 0)),
                   hidden_dim, rng) {
    TGCRN_CHECK_GE(num_supports, 1);
    RegisterModule("gates", &gates_);
    RegisterModule("candidate", &candidate_);
  }

  // x: [B, N, in], h: [B, N, H]; each support is [N, N] or [B, N, N].
  ag::Variable Forward(const ag::Variable& x, const ag::Variable& h,
                       const std::vector<ag::Variable>& supports) const {
    TGCRN_CHECK_EQ(static_cast<int64_t>(supports.size()), num_supports_);
    ag::Variable zr = ag::Sigmoid(gates_.Forward(
        Aggregate(ag::Concat({x, h}, -1), supports, include_identity_)));
    ag::Variable z = ag::Slice(zr, -1, 0, hidden_dim_);
    ag::Variable r = ag::Slice(zr, -1, hidden_dim_, 2 * hidden_dim_);
    ag::Variable cand = ag::Tanh(candidate_.Forward(Aggregate(
        ag::Concat({x, ag::Mul(r, h)}, -1), supports, include_identity_)));
    ag::Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
    return ag::Add(ag::Mul(one_minus_z, h), ag::Mul(z, cand));
  }

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  static ag::Variable Aggregate(const ag::Variable& value,
                                const std::vector<ag::Variable>& supports,
                                bool include_identity) {
    std::vector<ag::Variable> parts;
    parts.reserve(supports.size() + 1);
    if (include_identity) parts.push_back(value);
    for (const auto& s : supports) {
      parts.push_back(ag::Matmul(s, value));
    }
    return parts.size() == 1 ? parts[0] : ag::Concat(parts, -1);
  }

  int64_t hidden_dim_;
  int64_t num_supports_;
  bool include_identity_;
  nn::Linear gates_;
  nn::Linear candidate_;
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_GRAPH_GRU_CELL_H_
