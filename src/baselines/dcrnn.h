// Copyright 2026 TGCRN Reproduction Authors
// DCRNN baseline [15]: an encoder-decoder of diffusion-convolutional GRUs
// on a pre-defined distance graph. The diffusion convolution uses k-step
// bidirectional random-walk supports built once from sensor distances -
// the canonical "pre-defined graph" representative of Table II.
#ifndef TGCRN_BASELINES_DCRNN_H_
#define TGCRN_BASELINES_DCRNN_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/graph_gru_cell.h"
#include "core/forecast_model.h"
#include "graph/graph_ops.h"
#include "nn/linear.h"

namespace tgcrn {
namespace baselines {

class Dcrnn : public core::ForecastModel {
 public:
  struct Config {
    int64_t num_nodes = 0;
    int64_t input_dim = 2;
    int64_t output_dim = 2;
    int64_t horizon = 4;
    int64_t hidden_dim = 16;
    int64_t num_layers = 2;
    int64_t diffusion_steps = 2;
    float graph_threshold = 0.1f;  // Gaussian-kernel sparsification
  };

  // `distances` is the [N, N] pairwise sensor-distance matrix.
  Dcrnn(const Config& config, const Tensor& distances, Rng* rng)
      : config_(config) {
    const Tensor adj =
        graph::GaussianKernelGraph(distances, config.graph_threshold);
    for (Tensor& s : graph::DiffusionSupports(adj, config.diffusion_steps,
                                              /*bidirectional=*/true)) {
      supports_.emplace_back(std::move(s));
    }
    const int64_t k = static_cast<int64_t>(supports_.size());
    for (int64_t l = 0; l < config.num_layers; ++l) {
      encoder_.push_back(std::make_unique<GraphGRUCell>(
          l == 0 ? config.input_dim : config.hidden_dim, config.hidden_dim,
          k, rng));
      RegisterModule("enc" + std::to_string(l), encoder_.back().get());
      decoder_.push_back(std::make_unique<GraphGRUCell>(
          l == 0 ? config.output_dim : config.hidden_dim, config.hidden_dim,
          k, rng));
      RegisterModule("dec" + std::to_string(l), decoder_.back().get());
    }
    head_ = std::make_unique<nn::Linear>(config.hidden_dim,
                                         config.output_dim, rng);
    RegisterModule("head", head_.get());
  }

  ag::Variable Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size();
    const int64_t p = batch.x.size(1);
    const int64_t n = config_.num_nodes;
    std::vector<ag::Variable> hidden(config_.num_layers);
    for (auto& h : hidden) {
      h = ag::Variable(Tensor::Zeros({b, n, config_.hidden_dim}));
    }
    ag::Variable x_all{batch.x};
    for (int64_t t = 0; t < p; ++t) {
      ag::Variable input = ag::Squeeze(ag::Slice(x_all, 1, t, t + 1), 1);
      for (int64_t l = 0; l < config_.num_layers; ++l) {
        input = encoder_[l]->Forward(input, hidden[l], supports_);
        hidden[l] = input;
      }
    }
    ag::Variable dec_input{Tensor::Zeros({b, n, config_.output_dim})};
    std::vector<ag::Variable> outputs;
    for (int64_t q = 0; q < config_.horizon; ++q) {
      ag::Variable input = dec_input;
      for (int64_t l = 0; l < config_.num_layers; ++l) {
        input = decoder_[l]->Forward(input, hidden[l], supports_);
        hidden[l] = input;
      }
      ag::Variable y = head_->Forward(hidden.back());
      outputs.push_back(y);
      dec_input = y;
    }
    return ag::Stack(outputs, 1);
  }

  std::string name() const override { return "DCRNN"; }

 private:
  Config config_;
  std::vector<ag::Variable> supports_;  // constant diffusion matrices
  std::vector<std::unique_ptr<GraphGRUCell>> encoder_;
  std::vector<std::unique_ptr<GraphGRUCell>> decoder_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_DCRNN_H_
