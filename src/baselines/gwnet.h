// Copyright 2026 TGCRN Reproduction Authors
// Graph WaveNet baseline [27] ("-lite"): stacked gated dilated causal
// temporal convolutions interleaved with graph convolution on a
// self-adaptive adjacency softmax(relu(E1 E2^T)), with residual and skip
// connections and an MLP head over the final skip features. Kept faithful
// at the architectural level; the original's 8-block/256-channel scale is
// reduced for the single-core evaluation setting.
#ifndef TGCRN_BASELINES_GWNET_H_
#define TGCRN_BASELINES_GWNET_H_

#include <memory>
#include <string>
#include <vector>

#include "core/forecast_model.h"
#include "nn/causal_conv1d.h"
#include "nn/linear.h"

namespace tgcrn {
namespace baselines {

class GraphWaveNet : public core::ForecastModel {
 public:
  struct Config {
    int64_t num_nodes = 0;
    int64_t input_dim = 2;
    int64_t output_dim = 2;
    int64_t horizon = 4;
    int64_t channels = 16;       // residual channels
    int64_t skip_channels = 32;
    int64_t num_blocks = 2;      // dilations 1, 2, 4, ...
    int64_t node_embed_dim = 10;
  };

  GraphWaveNet(const Config& config, Rng* rng) : config_(config) {
    e1_ = RegisterParameter(
        "e1", nn::NormalInit({config.num_nodes, config.node_embed_dim},
                             0.3f, rng));
    e2_ = RegisterParameter(
        "e2", nn::NormalInit({config.num_nodes, config.node_embed_dim},
                             0.3f, rng));
    input_proj_ =
        std::make_unique<nn::Linear>(config.input_dim, config.channels, rng);
    RegisterModule("input_proj", input_proj_.get());
    int64_t dilation = 1;
    for (int64_t blk = 0; blk < config.num_blocks; ++blk) {
      filters_.push_back(std::make_unique<nn::CausalConv1d>(
          config.channels, config.channels, 2, dilation, rng));
      RegisterModule("filter" + std::to_string(blk), filters_.back().get());
      gates_.push_back(std::make_unique<nn::CausalConv1d>(
          config.channels, config.channels, 2, dilation, rng));
      RegisterModule("gate" + std::to_string(blk), gates_.back().get());
      gcn_self_.push_back(std::make_unique<nn::Linear>(
          config.channels, config.channels, rng));
      RegisterModule("gcn_self" + std::to_string(blk),
                     gcn_self_.back().get());
      gcn_neigh_.push_back(std::make_unique<nn::Linear>(
          config.channels, config.channels, rng, /*bias=*/false));
      RegisterModule("gcn_neigh" + std::to_string(blk),
                     gcn_neigh_.back().get());
      skips_.push_back(std::make_unique<nn::Linear>(
          config.channels, config.skip_channels, rng));
      RegisterModule("skip" + std::to_string(blk), skips_.back().get());
      dilation *= 2;
    }
    // Final-state skip: feeds the last block's GCN/residual output into the
    // head (without it that block's graph convolution would be dead weight).
    out_skip_ = std::make_unique<nn::Linear>(config.channels,
                                             config.skip_channels, rng);
    RegisterModule("out_skip", out_skip_.get());
    head1_ = std::make_unique<nn::Linear>(config.skip_channels,
                                          config.skip_channels, rng);
    RegisterModule("head1", head1_.get());
    head2_ = std::make_unique<nn::Linear>(
        config.skip_channels, config.horizon * config.output_dim, rng);
    RegisterModule("head2", head2_.get());
  }

  ag::Variable Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size();
    const int64_t p = batch.x.size(1);
    const int64_t n = config_.num_nodes;
    // Self-adaptive adjacency (built fresh so gradients reach E1/E2).
    ag::Variable adapt = ag::Softmax(
        ag::Relu(ag::Matmul(e1_, ag::Transpose(e2_, 0, 1))), -1);  // [N, N]

    // Work layout [B, N, T, C]: causal convs shift axis -2, graph conv
    // contracts the node axis.
    ag::Variable x = ag::Permute(ag::Variable(batch.x), {0, 2, 1, 3});
    x = input_proj_->Forward(x);  // [B, N, P, C]
    ag::Variable skip_sum;
    for (size_t blk = 0; blk < filters_.size(); ++blk) {
      ag::Variable gated =
          ag::Mul(ag::Tanh(filters_[blk]->Forward(x)),
                  ag::Sigmoid(gates_[blk]->Forward(x)));  // [B, N, P, C]
      // Graph convolution at every time position: adj @ value over nodes.
      ag::Variable by_time = ag::Permute(gated, {0, 2, 1, 3});  // [B,P,N,C]
      ag::Variable mixed = ag::Matmul(adapt, by_time);          // broadcast
      ag::Variable gcn = ag::Add(gcn_self_[blk]->Forward(by_time),
                                 gcn_neigh_[blk]->Forward(mixed));
      gcn = ag::Permute(gcn, {0, 2, 1, 3});  // back to [B, N, P, C]
      x = ag::Add(x, gcn);                   // residual
      ag::Variable s = skips_[blk]->Forward(gated);
      skip_sum = skip_sum.defined() ? ag::Add(skip_sum, s) : s;
    }
    skip_sum = ag::Add(skip_sum, out_skip_->Forward(x));
    // Final skip features at the last time step.
    ag::Variable last =
        ag::Squeeze(ag::Slice(skip_sum, 2, p - 1, p), 2);  // [B, N, S]
    ag::Variable out = head2_->Forward(ag::Relu(head1_->Forward(
        ag::Relu(last))));  // [B, N, Q*d]
    out = ag::Reshape(out, {b, n, config_.horizon, config_.output_dim});
    return ag::Permute(out, {0, 2, 1, 3});
  }

  std::string name() const override { return "GraphWaveNet"; }

 private:
  Config config_;
  ag::Variable e1_, e2_;
  std::unique_ptr<nn::Linear> input_proj_;
  std::vector<std::unique_ptr<nn::CausalConv1d>> filters_;
  std::vector<std::unique_ptr<nn::CausalConv1d>> gates_;
  std::vector<std::unique_ptr<nn::Linear>> gcn_self_;
  std::vector<std::unique_ptr<nn::Linear>> gcn_neigh_;
  std::vector<std::unique_ptr<nn::Linear>> skips_;
  std::unique_ptr<nn::Linear> out_skip_;
  std::unique_ptr<nn::Linear> head1_;
  std::unique_ptr<nn::Linear> head2_;
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_GWNET_H_
