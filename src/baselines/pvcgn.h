// Copyright 2026 TGCRN Reproduction Authors
// PVCGN baseline [17] ("-lite"): physical-virtual collaboration graph
// network. Multiple pre-defined graphs - the physical distance graph plus
// "virtual" similarity and correlation graphs built from training data -
// are fused inside graph-convolutional GRUs in an encoder-decoder. This
// mirrors the original's multi-graph collaboration (its ridership/OD graph
// is replaced by the correlation graph since we keep the same inputs for
// all models); like the original it is the parameter-heaviest baseline.
#ifndef TGCRN_BASELINES_PVCGN_H_
#define TGCRN_BASELINES_PVCGN_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/graph_gru_cell.h"
#include "core/forecast_model.h"
#include "graph/graph_ops.h"
#include "nn/linear.h"

namespace tgcrn {
namespace baselines {

class Pvcgn : public core::ForecastModel {
 public:
  struct Config {
    int64_t num_nodes = 0;
    int64_t input_dim = 2;
    int64_t output_dim = 2;
    int64_t horizon = 4;
    int64_t hidden_dim = 24;  // larger than peers, like the original
    int64_t num_layers = 2;
    int64_t knn_k = 4;
    float correlation_threshold = 0.3f;
  };

  // `distances`: [N, N] physical distances. `train_series`: [N, T] training
  // portion of the (first-channel) series for the virtual graphs.
  Pvcgn(const Config& config, const Tensor& distances,
        const Tensor& train_series, Rng* rng)
      : config_(config) {
    // Physical graph: thresholded Gaussian kernel on distances.
    supports_.emplace_back(graph::RandomWalkNormalize(
        graph::GaussianKernelGraph(distances, 0.1f)));
    // Virtual similarity graph: kNN on inverse distance.
    supports_.emplace_back(graph::RandomWalkNormalize(graph::KnnSparsify(
        graph::GaussianKernelGraph(distances, 0.0f), config.knn_k)));
    // Virtual correlation graph from training dynamics.
    Tensor corr =
        graph::CorrelationGraph(train_series, config.correlation_threshold);
    supports_.emplace_back(
        graph::RandomWalkNormalize(corr.Relu()));  // positive part
    const int64_t k = static_cast<int64_t>(supports_.size());
    for (int64_t l = 0; l < config.num_layers; ++l) {
      encoder_.push_back(std::make_unique<GraphGRUCell>(
          l == 0 ? config.input_dim : config.hidden_dim, config.hidden_dim,
          k, rng, /*include_identity=*/true));
      RegisterModule("enc" + std::to_string(l), encoder_.back().get());
      decoder_.push_back(std::make_unique<GraphGRUCell>(
          l == 0 ? config.output_dim : config.hidden_dim, config.hidden_dim,
          k, rng, /*include_identity=*/true));
      RegisterModule("dec" + std::to_string(l), decoder_.back().get());
    }
    head_ = std::make_unique<nn::Linear>(config.hidden_dim,
                                         config.output_dim, rng);
    RegisterModule("head", head_.get());
  }

  ag::Variable Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size();
    const int64_t p = batch.x.size(1);
    const int64_t n = config_.num_nodes;
    std::vector<ag::Variable> hidden(config_.num_layers);
    for (auto& h : hidden) {
      h = ag::Variable(Tensor::Zeros({b, n, config_.hidden_dim}));
    }
    ag::Variable x_all{batch.x};
    for (int64_t t = 0; t < p; ++t) {
      ag::Variable input = ag::Squeeze(ag::Slice(x_all, 1, t, t + 1), 1);
      for (int64_t l = 0; l < config_.num_layers; ++l) {
        input = encoder_[l]->Forward(input, hidden[l], supports_);
        hidden[l] = input;
      }
    }
    ag::Variable dec_input{Tensor::Zeros({b, n, config_.output_dim})};
    std::vector<ag::Variable> outputs;
    for (int64_t q = 0; q < config_.horizon; ++q) {
      ag::Variable input = dec_input;
      for (int64_t l = 0; l < config_.num_layers; ++l) {
        input = decoder_[l]->Forward(input, hidden[l], supports_);
        hidden[l] = input;
      }
      ag::Variable y = head_->Forward(hidden.back());
      outputs.push_back(y);
      dec_input = y;
    }
    return ag::Stack(outputs, 1);
  }

  std::string name() const override { return "PVCGN"; }

 private:
  Config config_;
  std::vector<ag::Variable> supports_;
  std::vector<std::unique_ptr<GraphGRUCell>> encoder_;
  std::vector<std::unique_ptr<GraphGRUCell>> decoder_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_PVCGN_H_
