// Copyright 2026 TGCRN Reproduction Authors
#include "baselines/ha.h"

#include "common/check.h"

namespace tgcrn {
namespace baselines {

void HistoricalAverage::Fit(const data::SpatioTemporalData& data,
                            int64_t fit_steps) {
  TGCRN_CHECK_GT(fit_steps, 0);
  TGCRN_CHECK_LE(fit_steps, data.num_steps());
  steps_per_day_ = data.steps_per_day;
  num_nodes_ = data.num_nodes();
  num_features_ = data.num_features();
  const int64_t cells = steps_per_day_ * num_nodes_ * num_features_;
  means_.assign(2, std::vector<float>(cells, 0.0f));
  std::vector<std::vector<int64_t>> counts(2,
                                           std::vector<int64_t>(cells, 0));
  const float* v = data.values.data();
  for (int64_t t = 0; t < fit_steps; ++t) {
    const int64_t period = data.day_of_week[t] >= 5 ? 1 : 0;
    const int64_t slot = data.slot_of_day[t];
    const int64_t base = slot * num_nodes_ * num_features_;
    for (int64_t i = 0; i < num_nodes_ * num_features_; ++i) {
      means_[period][base + i] += v[t * num_nodes_ * num_features_ + i];
      ++counts[period][base + i];
    }
  }
  for (int64_t p = 0; p < 2; ++p) {
    for (int64_t i = 0; i < cells; ++i) {
      if (counts[p][i] > 0) {
        means_[p][i] /= static_cast<float>(counts[p][i]);
      }
    }
  }
}

float HistoricalAverage::Predict(int64_t day_of_week, int64_t slot,
                                 int64_t node, int64_t channel) const {
  TGCRN_CHECK_GT(steps_per_day_, 0) << "Fit() before Predict()";
  const int64_t period = day_of_week >= 5 ? 1 : 0;
  return means_[period][(slot * num_nodes_ + node) * num_features_ +
                        channel];
}

std::vector<metrics::Metrics> HistoricalAverage::EvaluateOnDataset(
    const data::ForecastDataset& dataset,
    const metrics::MetricsOptions& options) const {
  const int64_t q = dataset.options().output_steps;
  const int64_t num = dataset.NumTestSamples();
  std::vector<int64_t> ids(num);
  for (int64_t i = 0; i < num; ++i) ids[i] = i;
  const data::Batch batch =
      dataset.MakeBatch(data::ForecastDataset::Split::kTest, ids);
  Tensor pred = Tensor::Zeros(batch.y.shape());
  for (int64_t b = 0; b < num; ++b) {
    for (int64_t h = 0; h < q; ++h) {
      for (int64_t i = 0; i < num_nodes_; ++i) {
        for (int64_t c = 0; c < num_features_; ++c) {
          pred.set({b, h, i, c},
                   Predict(batch.y_days[b][h], batch.y_slots[b][h], i, c));
        }
      }
    }
  }
  return metrics::EvaluatePerHorizon(pred, batch.y, options);
}

}  // namespace baselines
}  // namespace tgcrn
