// Copyright 2026 TGCRN Reproduction Authors
// CCRNN baseline [31] ("-lite"): coupled layer-wise graph convolution.
// Each recurrent layer owns its own full learnable adjacency; the first is
// initialized from the training data's correlation structure (standing in
// for the original's SVD-of-demand initialization) and upper layers are
// coupled to the layer below through a learnable blend
//   A_l_eff = Norm(relu(A_l + W_couple * A_{l-1})),
// the paper's layer-wise coupling mechanism in scalar-blend form.
#ifndef TGCRN_BASELINES_CCRNN_H_
#define TGCRN_BASELINES_CCRNN_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/graph_gru_cell.h"
#include "core/forecast_model.h"
#include "graph/graph_ops.h"
#include "nn/linear.h"

namespace tgcrn {
namespace baselines {

class Ccrnn : public core::ForecastModel {
 public:
  struct Config {
    int64_t num_nodes = 0;
    int64_t input_dim = 2;
    int64_t output_dim = 2;
    int64_t horizon = 4;
    int64_t hidden_dim = 16;
    int64_t num_layers = 2;
  };

  // `train_series`: [N, T] first-channel training series for the
  // initialization of the layer-1 adjacency.
  Ccrnn(const Config& config, const Tensor& train_series, Rng* rng)
      : config_(config) {
    Tensor init = graph::CorrelationGraph(train_series, 0.0f).Relu();
    for (int64_t l = 0; l < config.num_layers; ++l) {
      adjacency_.push_back(RegisterParameter(
          "adjacency" + std::to_string(l),
          l == 0 ? init.Clone()
                 : Tensor::RandUniform(
                       {config.num_nodes, config.num_nodes}, 0.0f, 0.1f,
                       rng)));
      if (l > 0) {
        couple_.push_back(
            RegisterParameter("couple" + std::to_string(l),
                              Tensor::Full({1}, 0.5f)));
      }
      cells_.push_back(std::make_unique<GraphGRUCell>(
          l == 0 ? config.input_dim : config.hidden_dim, config.hidden_dim,
          /*num_supports=*/1, rng, /*include_identity=*/true));
      RegisterModule("cell" + std::to_string(l), cells_.back().get());
    }
    head_ = std::make_unique<nn::Linear>(
        config.hidden_dim, config.horizon * config.output_dim, rng);
    RegisterModule("head", head_.get());
  }

  ag::Variable Forward(const data::Batch& batch) override {
    const int64_t b = batch.batch_size();
    const int64_t p = batch.x.size(1);
    const int64_t n = config_.num_nodes;
    // Effective layer graphs with coupling (built per forward pass so the
    // coupling weights receive gradients).
    std::vector<ag::Variable> graphs;
    for (int64_t l = 0; l < config_.num_layers; ++l) {
      ag::Variable base = adjacency_[l];
      if (l > 0) {
        ag::Variable blend =
            ag::Mul(ag::BroadcastTo(couple_[l - 1], {n, n}), graphs[l - 1]);
        base = ag::Add(base, blend);
      }
      graphs.push_back(ag::Softmax(ag::Relu(base), -1));
    }
    std::vector<ag::Variable> hidden(config_.num_layers);
    for (auto& h : hidden) {
      h = ag::Variable(Tensor::Zeros({b, n, config_.hidden_dim}));
    }
    ag::Variable x_all{batch.x};
    for (int64_t t = 0; t < p; ++t) {
      ag::Variable input = ag::Squeeze(ag::Slice(x_all, 1, t, t + 1), 1);
      for (int64_t l = 0; l < config_.num_layers; ++l) {
        input = cells_[l]->Forward(input, hidden[l], {graphs[l]});
        hidden[l] = input;
      }
    }
    ag::Variable out = head_->Forward(hidden.back());  // [B, N, Q*d]
    out = ag::Reshape(out, {b, n, config_.horizon, config_.output_dim});
    return ag::Permute(out, {0, 2, 1, 3});
  }

  std::string name() const override { return "CCRNN"; }

 private:
  Config config_;
  std::vector<ag::Variable> adjacency_;
  std::vector<ag::Variable> couple_;
  std::vector<std::unique_ptr<GraphGRUCell>> cells_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace baselines
}  // namespace tgcrn

#endif  // TGCRN_BASELINES_CCRNN_H_
