// Copyright 2026 TGCRN Reproduction Authors
// Dilated causal 1-D convolution along the time axis, the temporal module
// of Graph WaveNet-style TCNs. Input [B, T, C_in] -> output [B, T, C_out];
// output at time t depends only on inputs at times <= t (left zero-padding).
//
// Implemented as a sum of time-shifted pointwise projections: for kernel tap
// i, y += shift(x, i*dilation) @ W_i. At the kernel sizes used here (2) this
// is as fast as an explicit convolution kernel and reuses autograd matmul.
#ifndef TGCRN_NN_CAUSAL_CONV1D_H_
#define TGCRN_NN_CAUSAL_CONV1D_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/init.h"
#include "nn/module.h"

namespace tgcrn {
namespace nn {

class CausalConv1d : public Module {
 public:
  CausalConv1d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
               int64_t dilation, Rng* rng)
      : kernel_size_(kernel_size), dilation_(dilation) {
    TGCRN_CHECK_GE(kernel_size, 1);
    TGCRN_CHECK_GE(dilation, 1);
    for (int64_t i = 0; i < kernel_size; ++i) {
      taps_.push_back(RegisterParameter(
          "tap" + std::to_string(i),
          KaimingUniform({in_channels, out_channels},
                         in_channels * kernel_size, rng)));
    }
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_channels}));
  }

  // x: [B, T, C_in] (or [B, N, T, C_in]; the shift is on axis -2).
  ag::Variable Forward(const ag::Variable& x) const {
    const int64_t time_axis = x.value().dim() - 2;
    const int64_t t = x.size(time_axis);
    ag::Variable out;
    for (int64_t i = 0; i < kernel_size_; ++i) {
      const int64_t shift = i * dilation_;
      ag::Variable shifted;
      if (shift == 0) {
        shifted = x;
      } else if (shift >= t) {
        // Entirely out of range: contributes nothing but keep shapes.
        Shape zero_shape = x.value().shape();
        shifted = ag::Variable(Tensor::Zeros(zero_shape));
      } else {
        // shift right in time: y_t = x_{t-shift}; left-pad with zeros.
        Shape pad_shape = x.value().shape();
        pad_shape[time_axis] = shift;
        ag::Variable pad{Tensor::Zeros(pad_shape)};
        ag::Variable body = ag::Slice(x, time_axis, 0, t - shift);
        shifted = ag::Concat({pad, body}, time_axis);
      }
      ag::Variable term = ag::Matmul(shifted, taps_[i]);
      out = out.defined() ? ag::Add(out, term) : term;
    }
    return ag::Add(out, bias_);
  }

  // Time steps of history each output consumes: (k-1)*dilation + 1.
  int64_t receptive_field() const {
    return (kernel_size_ - 1) * dilation_ + 1;
  }

 private:
  int64_t kernel_size_;
  int64_t dilation_;
  std::vector<ag::Variable> taps_;
  ag::Variable bias_;
};

}  // namespace nn
}  // namespace tgcrn

#endif  // TGCRN_NN_CAUSAL_CONV1D_H_
