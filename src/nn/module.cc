// Copyright 2026 TGCRN Reproduction Authors
#include "nn/module.h"

#include <cstdint>
#include <fstream>

namespace tgcrn {
namespace nn {

std::vector<ag::Variable> Module::Parameters() const {
  std::vector<ag::Variable> out;
  for (const auto& [name, p] : params_) out.push_back(p);
  for (const auto& [name, child] : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, ag::Variable>> Module::NamedParameters()
    const {
  std::vector<std::pair<std::string, ag::Variable>> out;
  for (const auto& [name, p] : params_) out.emplace_back(name, p);
  for (const auto& [child_name, child] : children_) {
    for (auto& [name, p] : child->NamedParameters()) {
      out.emplace_back(child_name + "." + name, p);
    }
  }
  return out;
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& p : Parameters()) total += p.numel();
  return total;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

ag::Variable Module::RegisterParameter(std::string name, Tensor init) {
  ag::Variable param(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), param);
  return param;
}

void Module::RegisterModule(std::string name, Module* module) {
  TGCRN_CHECK(module != nullptr);
  children_.emplace_back(std::move(name), module);
}

Status Module::SaveParameters(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const auto params = Parameters();
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const Tensor& value = p.value();
    const uint64_t rank = value.shape().size();
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int64_t d : value.shape()) {
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.numel() * sizeof(float)));
  }
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Status Module::LoadParameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path + " for reading");
  auto params = Parameters();
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (count != params.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, model has " +
        std::to_string(params.size()));
  }
  for (auto& p : params) {
    uint64_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    Shape shape(rank);
    for (uint64_t d = 0; d < rank; ++d) {
      in.read(reinterpret_cast<char*>(&shape[d]), sizeof(shape[d]));
    }
    if (shape != p.value().shape()) {
      return Status::InvalidArgument(
          "checkpoint shape " + ShapeToString(shape) + " != model shape " +
          ShapeToString(p.value().shape()));
    }
    Tensor value(shape);
    in.read(reinterpret_cast<char*>(value.mutable_data()),
            static_cast<std::streamsize>(value.numel() * sizeof(float)));
    if (!in.good()) return Status::IOError("truncated checkpoint " + path);
    p.SetValue(std::move(value));
  }
  return Status::OK();
}

void Module::CopyParametersFrom(const Module& other) {
  auto dst = Parameters();
  auto src = other.Parameters();
  TGCRN_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    TGCRN_CHECK(dst[i].value().shape() == src[i].value().shape());
    dst[i].SetValue(src[i].value().Clone());
  }
}

}  // namespace nn
}  // namespace tgcrn
