// Copyright 2026 TGCRN Reproduction Authors
// Plain (non-graph) recurrent cells used by the FC-LSTM baseline and by
// graph learners that evolve node states over time (ESG). The graph
// convolutional GRU of the paper lives in src/core/gcgru.h.
#ifndef TGCRN_NN_RNN_CELLS_H_
#define TGCRN_NN_RNN_CELLS_H_

#include <utility>

#include "autograd/ops.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace tgcrn {
namespace nn {

// Gated recurrent unit over the last axis: works on [..., features].
class GRUCell : public Module {
 public:
  GRUCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
      : hidden_dim_(hidden_dim),
        gates_(input_dim + hidden_dim, 2 * hidden_dim, rng),
        candidate_(input_dim + hidden_dim, hidden_dim, rng) {
    RegisterModule("gates", &gates_);
    RegisterModule("candidate", &candidate_);
  }

  // x: [..., input_dim], h: [..., hidden_dim] -> new hidden state.
  ag::Variable Forward(const ag::Variable& x, const ag::Variable& h) const {
    ag::Variable xh = ag::Concat({x, h}, -1);
    ag::Variable zr = ag::Sigmoid(gates_.Forward(xh));
    const int64_t last = zr.value().dim() - 1;
    ag::Variable z = ag::Slice(zr, last, 0, hidden_dim_);
    ag::Variable r = ag::Slice(zr, last, hidden_dim_, 2 * hidden_dim_);
    ag::Variable xrh = ag::Concat({x, ag::Mul(r, h)}, -1);
    ag::Variable cand = ag::Tanh(candidate_.Forward(xrh));
    // h' = (1 - z) * h + z * cand
    ag::Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
    return ag::Add(ag::Mul(one_minus_z, h), ag::Mul(z, cand));
  }

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear gates_;
  Linear candidate_;
};

// LSTM cell over the last axis.
class LSTMCell : public Module {
 public:
  LSTMCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
      : hidden_dim_(hidden_dim),
        gates_(input_dim + hidden_dim, 4 * hidden_dim, rng) {
    RegisterModule("gates", &gates_);
  }

  struct State {
    ag::Variable h;
    ag::Variable c;
  };

  // Returns the next (h, c).
  State Forward(const ag::Variable& x, const State& state) const {
    ag::Variable xh = ag::Concat({x, state.h}, -1);
    ag::Variable all = gates_.Forward(xh);
    const int64_t last = all.value().dim() - 1;
    ag::Variable i = ag::Sigmoid(ag::Slice(all, last, 0, hidden_dim_));
    ag::Variable f =
        ag::Sigmoid(ag::Slice(all, last, hidden_dim_, 2 * hidden_dim_));
    ag::Variable g =
        ag::Tanh(ag::Slice(all, last, 2 * hidden_dim_, 3 * hidden_dim_));
    ag::Variable o =
        ag::Sigmoid(ag::Slice(all, last, 3 * hidden_dim_, 4 * hidden_dim_));
    ag::Variable c = ag::Add(ag::Mul(f, state.c), ag::Mul(i, g));
    ag::Variable h = ag::Mul(o, ag::Tanh(c));
    return {h, c};
  }

  // Zero state matching a leading shape (e.g. {B, N}).
  State InitialState(Shape leading) const {
    Shape s = std::move(leading);
    s.push_back(hidden_dim_);
    return {ag::Variable(Tensor::Zeros(s)), ag::Variable(Tensor::Zeros(s))};
  }

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear gates_;
};

}  // namespace nn
}  // namespace tgcrn

#endif  // TGCRN_NN_RNN_CELLS_H_
