// Copyright 2026 TGCRN Reproduction Authors
// Learnable lookup table: maps integer ids to dense vectors. Used for the
// paper's node embeddings E_nu and discretized time embeddings E_tau.
#ifndef TGCRN_NN_EMBEDDING_H_
#define TGCRN_NN_EMBEDDING_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/init.h"
#include "nn/module.h"

namespace tgcrn {
namespace nn {

class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng* rng,
            float init_stddev = 0.1f)
      : num_embeddings_(num_embeddings), dim_(dim) {
    weight_ = RegisterParameter(
        "weight", NormalInit({num_embeddings, dim}, init_stddev, rng));
  }

  // Rows for the given ids: [ids.size(), dim].
  ag::Variable Forward(const std::vector<int64_t>& ids) const {
    return ag::EmbeddingLookup(weight_, ids);
  }

  // The whole table as a Variable [num_embeddings, dim] (gradients flow).
  const ag::Variable& weight() const { return weight_; }

  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  ag::Variable weight_;
};

}  // namespace nn
}  // namespace tgcrn

#endif  // TGCRN_NN_EMBEDDING_H_
