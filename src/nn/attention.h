// Copyright 2026 TGCRN Reproduction Authors
// Multi-head scaled dot-product attention for the transformer baselines
// (Informer-lite / Crossformer-lite). Full attention is used in place of
// Informer's ProbSparse mechanism: at the sequence lengths of this
// reproduction (T <= 12) ProbSparse degenerates to full attention anyway;
// full attention is a strict superset in accuracy.
#ifndef TGCRN_NN_ATTENTION_H_
#define TGCRN_NN_ATTENTION_H_

#include <cmath>

#include "autograd/ops.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace tgcrn {
namespace nn {

class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t d_model, int64_t num_heads, Rng* rng)
      : d_model_(d_model),
        num_heads_(num_heads),
        d_head_(d_model / num_heads),
        wq_(d_model, d_model, rng),
        wk_(d_model, d_model, rng),
        wv_(d_model, d_model, rng),
        wo_(d_model, d_model, rng) {
    TGCRN_CHECK_EQ(d_model % num_heads, 0);
    RegisterModule("wq", &wq_);
    RegisterModule("wk", &wk_);
    RegisterModule("wv", &wv_);
    RegisterModule("wo", &wo_);
  }

  // query: [B, Tq, d_model], key/value: [B, Tk, d_model].
  // If causal, position t of the query may only attend to key positions
  // <= t (requires Tq == Tk).
  ag::Variable Forward(const ag::Variable& query, const ag::Variable& key,
                       const ag::Variable& value, bool causal = false) const {
    const int64_t batch = query.size(0);
    const int64_t tq = query.size(1);
    const int64_t tk = key.size(1);
    ag::Variable q = SplitHeads(wq_.Forward(query), batch, tq);
    ag::Variable k = SplitHeads(wk_.Forward(key), batch, tk);
    ag::Variable v = SplitHeads(wv_.Forward(value), batch, tk);
    // scores: [B, H, Tq, Tk]
    ag::Variable scores =
        ag::MulScalar(ag::Matmul(q, ag::Transpose(k, -2, -1)),
                      1.0f / std::sqrt(static_cast<float>(d_head_)));
    if (causal) {
      TGCRN_CHECK_EQ(tq, tk);
      Tensor mask = Tensor::Zeros({tq, tk});
      for (int64_t i = 0; i < tq; ++i) {
        for (int64_t j = i + 1; j < tk; ++j) {
          mask.set({i, j}, -1e9f);
        }
      }
      scores = ag::Add(scores, ag::Variable(mask));
    }
    ag::Variable attn = ag::Softmax(scores, -1);
    ag::Variable out = ag::Matmul(attn, v);  // [B, H, Tq, dh]
    out = ag::Permute(out, {0, 2, 1, 3});    // [B, Tq, H, dh]
    out = ag::Reshape(out, {batch, tq, d_model_});
    return wo_.Forward(out);
  }

 private:
  // [B, T, d_model] -> [B, H, T, d_head]
  ag::Variable SplitHeads(const ag::Variable& x, int64_t batch,
                          int64_t t) const {
    ag::Variable r = ag::Reshape(x, {batch, t, num_heads_, d_head_});
    return ag::Permute(r, {0, 2, 1, 3});
  }

  int64_t d_model_;
  int64_t num_heads_;
  int64_t d_head_;
  Linear wq_, wk_, wv_, wo_;
};

}  // namespace nn
}  // namespace tgcrn

#endif  // TGCRN_NN_ATTENTION_H_
