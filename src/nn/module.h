// Copyright 2026 TGCRN Reproduction Authors
// Base class for neural-network modules: a named parameter registry with
// recursive collection, train/eval mode, and binary checkpointing. Concrete
// layers own their submodules as plain members and register them in their
// constructor, mirroring the torch.nn.Module idiom.
#ifndef TGCRN_NN_MODULE_H_
#define TGCRN_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"

namespace tgcrn {
namespace nn {

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  // Modules hold registries of pointers into themselves; moving or copying
  // would dangle them.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable parameters of this module and its submodules.
  std::vector<ag::Variable> Parameters() const;

  // Parameters with hierarchical dotted names ("encoder.cell0.gate_w").
  std::vector<std::pair<std::string, ag::Variable>> NamedParameters() const;

  // Total number of trainable scalars (the paper's "# Parameters").
  int64_t NumParameters() const;

  // Clears gradients on every parameter.
  void ZeroGrad();

  // Switches train/eval mode recursively (affects dropout etc.).
  void SetTraining(bool training);
  bool training() const { return training_; }

  // Binary checkpoint of all parameter values, in registration order.
  // Load fails if the parameter count or any shape differs.
  Status SaveParameters(const std::string& path) const;
  Status LoadParameters(const std::string& path);

  // Copies parameter values from another module with an identical
  // parameter layout (used by early stopping to restore the best weights).
  void CopyParametersFrom(const Module& other);

 protected:
  // Registers a trainable parameter initialized to `init`.
  ag::Variable RegisterParameter(std::string name, Tensor init);

  // Registers a child module (must outlive this module; typically a member).
  void RegisterModule(std::string name, Module* module);

 private:
  std::vector<std::pair<std::string, ag::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace tgcrn

#endif  // TGCRN_NN_MODULE_H_
