// Copyright 2026 TGCRN Reproduction Authors
// Layer normalization over the last axis, composed from autograd ops.
#ifndef TGCRN_NN_LAYER_NORM_H_
#define TGCRN_NN_LAYER_NORM_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace tgcrn {
namespace nn {

class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f) : eps_(eps) {
    gamma_ = RegisterParameter("gamma", Tensor::Ones({dim}));
    beta_ = RegisterParameter("beta", Tensor::Zeros({dim}));
  }

  ag::Variable Forward(const ag::Variable& x) const {
    ag::Variable mean = ag::Mean(x, -1, /*keepdim=*/true);
    ag::Variable centered = ag::Sub(x, mean);
    ag::Variable var =
        ag::Mean(ag::Mul(centered, centered), -1, /*keepdim=*/true);
    ag::Variable inv_std = ag::Pow(ag::AddScalar(var, eps_), -0.5f);
    ag::Variable normed = ag::Mul(centered, inv_std);
    return ag::Add(ag::Mul(normed, gamma_), beta_);
  }

 private:
  float eps_;
  ag::Variable gamma_;
  ag::Variable beta_;
};

}  // namespace nn
}  // namespace tgcrn

#endif  // TGCRN_NN_LAYER_NORM_H_
