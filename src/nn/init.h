// Copyright 2026 TGCRN Reproduction Authors
// Weight initialization schemes. All take an explicit Rng for determinism.
#ifndef TGCRN_NN_INIT_H_
#define TGCRN_NN_INIT_H_

#include <cmath>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace nn {

// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
inline Tensor XavierUniform(Shape shape, int64_t fan_in, int64_t fan_out,
                            Rng* rng) {
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandUniform(std::move(shape), -a, a, rng);
}

// Xavier uniform inferring fans from a 2-D weight [in, out].
inline Tensor XavierUniform2d(int64_t in, int64_t out, Rng* rng) {
  return XavierUniform({in, out}, in, out, rng);
}

// PyTorch nn.Linear default: U(-1/sqrt(fan_in), 1/sqrt(fan_in)).
inline Tensor KaimingUniform(Shape shape, int64_t fan_in, Rng* rng) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return Tensor::RandUniform(std::move(shape), -bound, bound, rng);
}

// Small-scale normal, the usual choice for embedding tables.
inline Tensor NormalInit(Shape shape, float stddev, Rng* rng) {
  return Tensor::RandNormal(std::move(shape), 0.0f, stddev, rng);
}

}  // namespace nn
}  // namespace tgcrn

#endif  // TGCRN_NN_INIT_H_
