// Copyright 2026 TGCRN Reproduction Authors
// Affine layer y = x W + b applied to the last axis of an arbitrary-rank
// input: [..., in_features] -> [..., out_features].
#ifndef TGCRN_NN_LINEAR_H_
#define TGCRN_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/init.h"
#include "nn/module.h"
#include "obs/health.h"

namespace tgcrn {
namespace nn {

class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true)
      : in_features_(in_features), out_features_(out_features) {
    weight_ = RegisterParameter(
        "weight", KaimingUniform({in_features, out_features}, in_features,
                                 rng));
    if (bias) {
      bias_ = RegisterParameter(
          "bias", KaimingUniform({out_features}, in_features, rng));
    }
  }

  ag::Variable Forward(const ag::Variable& x) const {
    TGCRN_CHECK_GE(x.value().dim(), 1);
    ag::Variable input = x;
    // Matmul requires rank >= 2; lift a vector input temporarily.
    const bool was_vector = x.value().dim() == 1;
    if (was_vector) input = ag::Unsqueeze(input, 0);
    ag::Variable out = ag::Matmul(input, weight_);
    if (bias_.defined()) out = ag::Add(out, bias_);
    if (was_vector) out = ag::Squeeze(out, 0);
    TGCRN_HEALTH_TAP("nn.linear.out", out.value());
    return out;
  }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const ag::Variable& weight() const { return weight_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  ag::Variable weight_;
  ag::Variable bias_;
};

}  // namespace nn
}  // namespace tgcrn

#endif  // TGCRN_NN_LINEAR_H_
