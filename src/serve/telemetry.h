// Copyright 2026 TGCRN Reproduction Authors
// Request-level serving telemetry (operator guide: docs/SERVING.md
// "Reading the request telemetry"). Three sinks over one record type,
// the fixed-size obs::RequestTrace the server stamps as a request moves
// through its lifecycle stages:
//
//   read -> parse -> batch_wait -> gather -> kernel -> scatter
//        -> serialize -> flush
//
//  * per-stage log2 histograms in the metric registry
//    (serve.stage_<name>_us), summarized by the extended `stats` op and
//    the tgcrn_serve_stats CLI;
//  * a structured JSONL access log (TGCRN_SERVE_ACCESS_LOG=<path>), one
//    line per request, plus a bounded slow-request exemplar ring
//    (requests over TGCRN_SERVE_SLOW_US µs) retrievable via
//    {"op":"stats","view":"slow"} and dumped into the log on
//    shutdown/abort next to the trace/metrics/prof flush;
//  * DriftMonitor — online residual stats (per-horizon MAE/RMSE and
//    observation coverage, matched when observations later arrive for
//    forecasted entities) and periodic graph health on the live
//    adjacency, emitted as {"type":"drift"} lines in the access log.
//
// Arming: telemetry is armed iff TGCRN_SERVE_ACCESS_LOG or
// TGCRN_SERVE_SLOW_US is set. Disarmed, the server's only per-request
// cost is one relaxed load (obs::RpcTracingArmed) — no stamps, no
// recording, bitwise-identical serving. Armed, recording stays free of
// tensor heap allocations: traces live in preallocated rings, residual
// buffers are plain float vectors sized once per entity, and the access
// log line is formatted into a reused buffer. The graph-health probe
// does allocate tensors — it runs only at drift-emission cadence, never
// per request.
#ifndef TGCRN_SERVE_TELEMETRY_H_
#define TGCRN_SERVE_TELEMETRY_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/rpc_trace.h"
#include "serve/session.h"

namespace tgcrn {
namespace serve {

// Stage slots of a RequestTrace, in lifecycle order. Each slot holds the
// offset from the request's start at which that stage *completed*; a
// stage's duration is the delta from the previous slot.
enum ServeStage {
  kStageRead = 0,      // request bytes fully received from the socket
  kStageParse,         // JSON parsed, request validated
  kStageBatchWait,     // dispatch reached it (time queued behind the round)
  kStageGather,        // hidden-state gather / input staging done
  kStageKernel,        // encoder/decoder kernel wave done
  kStageScatter,       // state write-back / output copy done
  kStageSerialize,     // response JSON built
  kStageFlush,         // response enqueued + first socket flush attempted
  kServeStageCount
};
static_assert(kServeStageCount <= obs::kRpcMaxStages,
              "RequestTrace has a slot per serve stage");
const char* ServeStageName(int stage);

// Op codes stored in RequestTrace::op.
enum ServeOp {
  kOpObserve = 0,
  kOpForecast,
  kOpEvict,
  kOpStats,
  kOpShutdown,
  kOpOther,  // unknown ops and malformed lines
};
const char* ServeOpName(int op);

struct TelemetryConfig {
  std::string access_log_path;  // TGCRN_SERVE_ACCESS_LOG ("" = off)
  int64_t slow_us = 0;          // TGCRN_SERVE_SLOW_US (0 = off)
  // Matched residual observations per drift block; 0 emits only at
  // flush/shutdown. TGCRN_SERVE_DRIFT_EVERY.
  int64_t drift_every = 256;
  int64_t slow_capacity = 64;       // exemplar ring size
  int64_t ring_capacity = 32;       // per-connection recent-trace ring
  int64_t drift_max_entities = 1024;  // pending-forecast tracking bound

  static TelemetryConfig FromEnv();
  bool armed() const { return !access_log_path.empty() || slow_us > 0; }
};

// Online forecast-accuracy and graph-drift monitor over served traffic.
// A forecast registers the entity's predicted [Q, N, d] grid; each later
// observation of that entity at encoder step s matches horizon
// h = s - steps_at_forecast (1..Q) and accumulates |err| / err^2 against
// the recorded prediction. Coverage is the fraction of observations in
// the window that matched some outstanding horizon — low coverage means
// forecasts are stale or entities churn faster than they are forecast.
// All recording is tensor-allocation-free; Block() (the emission path)
// runs the graph-health probe, which is not.
class DriftMonitor {
 public:
  DriftMonitor(InferenceSession* session, const TelemetryConfig& config);

  // `grid` is the raw [Q, N, d] forecast row; `steps` the entity's
  // encoder step count when it was made.
  void RecordForecast(const std::string& entity, int64_t steps,
                      const float* grid);
  // `values` is the raw [N, d] observation; `steps` the entity's step
  // count after absorbing it.
  void RecordObservation(const std::string& entity, int64_t steps,
                         int64_t slot, const float* values);

  // True once the window holds drift_every matched observations.
  bool BlockDue() const;
  bool HasData() const { return total_observations_ > 0; }
  // Builds the {"type":"drift", ...} block (per-horizon MAE/RMSE,
  // coverage, live-adjacency graph health) and resets the window.
  obs::Json Block();

 private:
  struct PendingForecast {
    bool valid = false;
    int64_t steps = 0;           // entity steps when forecast
    std::vector<float> grid;     // [Q, N, d], capacity retained
  };

  InferenceSession* session_;
  int64_t drift_every_;
  int64_t max_tracked_;
  int64_t q_, n_, d_;
  std::unordered_map<std::string, PendingForecast> pending_;
  // Window accumulators, index = horizon - 1.
  std::vector<int64_t> horizon_count_;
  std::vector<double> horizon_abs_, horizon_sq_;
  int64_t window_observations_ = 0;
  int64_t window_matched_ = 0;
  int64_t total_observations_ = 0;
  int64_t total_matched_ = 0;
  int64_t blocks_emitted_ = 0;
  // Graph probe: the last two consecutive observations of the first
  // entity ever observed (sticky, so interleaved fleets still produce
  // consecutive pairs).
  std::string probe_entity_;
  int probe_depth_ = 0;
  std::vector<float> probe_prev_, probe_last_;
  int64_t probe_prev_slot_ = 0, probe_last_slot_ = 0;
};

// The telemetry sink bundle the server (and bench_serve) records into.
// Single-threaded like the serving loop. At most one armed instance per
// process (it owns the obs::RpcTracingArmed flag and the observability
// flush hook that makes SIGTERM'd servers leave a complete access log).
class ServeTelemetry {
 public:
  ServeTelemetry(TelemetryConfig config, InferenceSession* session);
  ~ServeTelemetry();

  bool armed() const { return armed_; }
  const TelemetryConfig& config() const { return config_; }

  // Server-assigned monotonic request ids (used when the client did not
  // supply an "id" field).
  int64_t NextRequestId() { return next_id_++; }

  // Finalizes the trace, feeds the stage histograms, appends the access
  // log line, and keeps a slow exemplar if the request crossed
  // TGCRN_SERVE_SLOW_US. `trace` must have its stages stamped in order.
  void RecordRequest(obs::RequestTrace* trace);

  DriftMonitor& drift() { return drift_; }
  // Emits a drift block into the access log when one is due.
  void MaybeEmitDrift();

  // Stage-histogram summary for the stats op:
  // {"read": {"count", "p50_us", "p90_us", "p99_us"}, ...}.
  obs::Json StageStatsJson() const;
  // Slow exemplars (oldest first) for {"op":"stats","view":"slow"}.
  obs::Json SlowRequestsJson() const;
  int64_t slow_count() const { return slow_.total(); }
  int64_t requests_recorded() const { return requests_recorded_; }

  // Final drift block + slow-exemplar dump + access-log close. Runs once
  // (later calls are no-ops); invoked by Server::Run on clean shutdown
  // and by the observability flush hook on abort/SIGTERM.
  void Flush();

  ServeTelemetry(const ServeTelemetry&) = delete;
  ServeTelemetry& operator=(const ServeTelemetry&) = delete;

 private:
  void WriteLogLine(const char* line);
  void WriteLogJson(const obs::Json& json);
  obs::Json TraceJson(const obs::RequestTrace& trace) const;

  TelemetryConfig config_;
  bool armed_ = false;
  std::FILE* log_ = nullptr;
  obs::RpcTraceRing slow_;
  DriftMonitor drift_;
  obs::Histogram* stage_hist_[kServeStageCount] = {};
  int64_t next_id_ = 1;
  int64_t requests_recorded_ = 0;
  bool flushed_ = false;
  std::string line_buffer_;  // reused access-log formatting buffer
};

}  // namespace serve
}  // namespace tgcrn

#endif  // TGCRN_SERVE_TELEMETRY_H_
