// Copyright 2026 TGCRN Reproduction Authors
// Newline-delimited-JSON forecast server over TCP (the tgcrn_serve tool).
// One request per line, one JSON response line per request, in request
// order per connection (protocol spec: docs/SERVING.md "Line protocol").
//
// The server is a single-threaded poll() loop: readable sockets are
// drained, complete lines are parsed, and the round's requests are
// handed to the InferenceSession in arrival order — consecutive runs of
// the same op form one batched call, which is where micro-batching
// happens (the session splits runs into kernel waves of at most
// TGCRN_SERVE_BATCH_MAX). Single-threading keeps the zero-alloc steady
// state trivially sound (one wave in flight) while the batched kernels
// still use the global thread pool for intra-wave parallelism. Sockets
// are non-blocking: responses a peer is slow to read are buffered per
// connection (bounded) and flushed on POLLOUT, so one stalled client
// cannot wedge the loop for everyone else.
//
// Telemetry: when a ServeTelemetry is attached and armed, every request
// carries a RequestTrace — id (client "id" field or server-assigned
// monotonic, propagated through batching) plus per-stage timestamps
// (read/parse/batch_wait/gather/kernel/scatter/serialize/flush) — and
// completed traces land in per-connection rings, the stage histograms,
// and the access log (docs/SERVING.md "Reading the request telemetry").
// Disarmed, the per-request cost is one relaxed load.
#ifndef TGCRN_SERVE_SERVER_H_
#define TGCRN_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/rpc_trace.h"
#include "serve/session.h"
#include "serve/telemetry.h"

namespace tgcrn {
namespace serve {

class Server {
 public:
  // `session` and `telemetry` are borrowed and must outlive the server;
  // `telemetry` may be null (or disarmed) for a telemetry-free server.
  // `port` 0 binds an ephemeral port (reported by port() after Start) —
  // the test/CI hook.
  Server(InferenceSession* session, int port,
         ServeTelemetry* telemetry = nullptr);
  ~Server();

  // Binds and listens on 127.0.0.1. False (with *error filled) on any
  // socket failure.
  bool Start(std::string* error);
  int port() const { return port_; }

  // Serves until a {"op":"shutdown"} request arrives or RequestStop is
  // called. Blocks. On exit, flushes the attached telemetry (the access
  // log closes complete even without a shutdown op).
  void Run();

  // Asks Run() to return after the current poll round. Async-signal-safe
  // (one atomic store) — the SIGTERM/SIGINT path of tgcrn_serve.
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

 private:
  struct Connection {
    int fd = -1;       // non-blocking once accepted
    std::string in;    // unparsed bytes (partial trailing line)
    std::string out;   // unsent response bytes (flushed on POLLOUT)
    size_t out_off = 0;  // sent prefix of `out`
    bool eof = false;
    // Tracing: when the current unparsed bytes began arriving / the last
    // successful recv — a parsed line's start and read stamps.
    int64_t line_start_ns = 0;
    int64_t last_recv_ns = 0;
    // Recent completed traces (created lazily when telemetry is armed).
    std::unique_ptr<obs::RpcTraceRing> ring;

    size_t pending_out() const { return out.size() - out_off; }
  };
  struct Request {
    size_t conn = 0;   // index into conns_
    bool valid = false;
    std::string error;
    std::string op;
    std::string entity;
    std::string view;  // stats sub-view ("slow")
    int64_t slot = 0;
    int64_t id = 0;          // client-supplied "id" (0 = none)
    bool client_id = false;  // echo `id` in the response
    std::vector<float> values;  // observe payload, flattened [N*d]
    obs::RequestTrace trace;    // stamped only while tracing is armed
  };

  void AcceptNew();
  void ReadConnection(size_t index);
  // Splits complete lines off conns_[index].in into parsed requests.
  void ParseLines(size_t index, std::vector<Request>* requests);
  // Executes a round's requests in order, batching same-op runs, and
  // queues one response line per request.
  void Dispatch(std::vector<Request>* requests);
  // Serializes `out` (echoing a client id), queues it, stamps the
  // serialize/flush stages, and records the completed trace.
  void SendJson(Request* request, obs::Json out, bool error);
  // Queues one response line and flushes as much buffered output as the
  // (non-blocking) socket accepts; the poll loop retries the remainder
  // on POLLOUT, so a stalled reader never blocks the serving thread.
  void Respond(size_t conn, const std::string& line);
  void FlushOutput(size_t index);
  void CloseConnection(size_t index);
  obs::Json StatsJson(const std::string& view);

  InferenceSession* session_;
  ServeTelemetry* telemetry_;
  int requested_port_;
  int port_ = 0;
  int listen_fd_ = -1;
  bool shutdown_ = false;
  std::atomic<bool> stop_{false};
  bool tracing_ = false;  // this round: telemetry attached and armed
  std::vector<Connection> conns_;
  int64_t alloc_marker_ = 0;  // tensor.allocations at the last stats op
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace serve
}  // namespace tgcrn

#endif  // TGCRN_SERVE_SERVER_H_
