// Copyright 2026 TGCRN Reproduction Authors
#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tgcrn {
namespace serve {
namespace {

// A connection that streams an unbounded line is broken or hostile;
// 32 MiB comfortably holds any observe payload the model could accept.
constexpr size_t kMaxLineBytes = 32ull << 20;

// Ceiling on buffered unsent responses per connection. A reader this far
// behind is stalled or gone — the connection is dropped rather than
// buffering without bound (forecast grids are large, so this is generous:
// thousands of city-scale responses).
constexpr size_t kMaxOutBytes = 128ull << 20;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

obs::Json ErrorLine(const std::string& op, const std::string& message) {
  obs::Json out = obs::Json::Object();
  out.Set("ok", obs::Json::Bool(false));
  if (!op.empty()) out.Set("op", obs::Json::Str(op));
  out.Set("error", obs::Json::Str(message));
  return out;
}

int64_t TensorAllocations() {
  return obs::Registry::Global().GetCounter("tensor.allocations")->Value();
}

int16_t OpCode(const std::string& op) {
  if (op == "observe") return kOpObserve;
  if (op == "forecast") return kOpForecast;
  if (op == "evict") return kOpEvict;
  if (op == "stats") return kOpStats;
  if (op == "shutdown") return kOpShutdown;
  return kOpOther;
}

int64_t NowNs() { return obs::internal::TraceNowNs(); }

}  // namespace

Server::Server(InferenceSession* session, int port, ServeTelemetry* telemetry)
    : session_(session), telemetry_(telemetry), requested_port_(port) {}

Server::~Server() {
  for (size_t i = 0; i < conns_.size(); ++i) CloseConnection(i);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(requested_port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    *error = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, 64) < 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  SetNonBlocking(listen_fd_);
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  alloc_marker_ = TensorAllocations();
  start_time_ = std::chrono::steady_clock::now();
  return true;
}

void Server::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN — the pending queue is drained
    SetNonBlocking(fd);
    Connection conn;
    conn.fd = fd;
    // Reuse a closed slot so conns_ stays dense-ish under churn.
    size_t slot = conns_.size();
    for (size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i].fd < 0) {
        slot = i;
        break;
      }
    }
    if (slot == conns_.size()) {
      conns_.push_back(std::move(conn));
    } else {
      conns_[slot] = std::move(conn);
    }
  }
}

void Server::ReadConnection(size_t index) {
  Connection& conn = conns_[index];
  char buf[4096];
  const ssize_t got = ::recv(conn.fd, buf, sizeof(buf), 0);
  if (got > 0) {
    if (tracing_) {
      const int64_t now = NowNs();
      // The first bytes after a fully-consumed buffer start a new line
      // (or pipelined run of lines); later recvs extend it.
      if (conn.in.empty()) conn.line_start_ns = now;
      conn.last_recv_ns = now;
    }
    conn.in.append(buf, static_cast<size_t>(got));
    if (conn.in.size() > kMaxLineBytes) CloseConnection(index);
  } else if (got == 0) {
    conn.eof = true;
  } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
    CloseConnection(index);
  }
}

void Server::ParseLines(size_t index, std::vector<Request>* requests) {
  Connection& conn = conns_[index];
  size_t start = 0;
  for (;;) {
    const size_t newline = conn.in.find('\n', start);
    if (newline == std::string::npos) break;
    std::string line = conn.in.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    Request request;
    request.conn = index;
    if (tracing_) {
      request.trace.Reset();
      request.trace.start_ns =
          conn.line_start_ns > 0 ? conn.line_start_ns : conn.last_recv_ns;
      request.trace.Stamp(kStageRead, conn.last_recv_ns);
    }
    obs::Json body;
    std::string parse_error;
    if (!obs::Json::Parse(line, &body, &parse_error) || !body.is_object()) {
      request.error = "malformed JSON: " + parse_error;
      if (tracing_) {
        request.trace.id = telemetry_->NextRequestId();
        request.trace.op = kOpOther;
        request.trace.Stamp(kStageParse, NowNs());
      }
      requests->push_back(std::move(request));
      continue;
    }
    request.op = body.GetString("op");
    request.entity = body.GetString("entity");
    request.slot = body.GetInt("slot");
    request.view = body.GetString("view");
    // Client-supplied request id (any positive integer), echoed in the
    // response and propagated through batching into the access log;
    // otherwise the server assigns a monotonic one.
    request.id = body.GetInt("id");
    request.client_id = request.id > 0;
    if (request.op == "observe") {
      const obs::Json& values = body["values"];
      if (!values.is_array() || values.size() == 0) {
        request.error = "observe needs a non-empty values array";
      } else if (values.at(0).is_array()) {
        // Nested [N][d] rows (the documented form).
        for (size_t row = 0; row < values.size(); ++row) {
          const obs::Json& cols = values.at(row);
          for (size_t col = 0; col < cols.size(); ++col) {
            request.values.push_back(
                static_cast<float>(cols.at(col).AsDouble()));
          }
        }
      } else {
        // Flat [N*d] also accepted.
        for (size_t i = 0; i < values.size(); ++i) {
          request.values.push_back(
              static_cast<float>(values.at(i).AsDouble()));
        }
      }
    }
    if (tracing_) {
      request.trace.id =
          request.client_id ? request.id : telemetry_->NextRequestId();
      request.trace.op = OpCode(request.op);
      request.trace.Stamp(kStageParse, NowNs());
    }
    request.valid = request.error.empty();
    requests->push_back(std::move(request));
  }
  conn.in.erase(0, start);
  if (conn.in.empty()) conn.line_start_ns = 0;
}

void Server::SendJson(Request* request, obs::Json out, bool error) {
  if (request->client_id) out.Set("id", obs::Json::Int(request->id));
  const std::string line = out.Dump();
  if (tracing_) {
    request->trace.status = error ? 1 : 0;
    request->trace.Stamp(kStageSerialize, NowNs());
  }
  Respond(request->conn, line);
  if (!tracing_) return;
  request->trace.Stamp(kStageFlush, NowNs());
  // RecordRequest finalizes the trace (carrying unset stages forward), so
  // the per-connection ring keeps the same record the access log saw.
  telemetry_->RecordRequest(&request->trace);
  Connection& conn = conns_[request->conn];
  if (conn.fd >= 0) {
    if (!conn.ring) {
      conn.ring.reset(new obs::RpcTraceRing(
          static_cast<int>(telemetry_->config().ring_capacity)));
    }
    conn.ring->Push(request->trace);
  }
}

void Server::Respond(size_t conn, const std::string& line) {
  Connection& c = conns_[conn];
  if (c.fd < 0) return;
  if (c.pending_out() + line.size() + 1 > kMaxOutBytes) {
    CloseConnection(conn);
    return;
  }
  c.out.append(line);
  c.out.push_back('\n');
  FlushOutput(conn);
}

void Server::FlushOutput(size_t index) {
  Connection& conn = conns_[index];
  while (conn.fd >= 0 && conn.out_off < conn.out.size()) {
    const ssize_t wrote =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (wrote <= 0) {
      if (wrote < 0 && errno == EINTR) continue;
      if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;  // socket buffer full — the poll loop retries on POLLOUT
      }
      CloseConnection(index);
      return;
    }
    conn.out_off += static_cast<size_t>(wrote);
  }
  conn.out.clear();
  conn.out_off = 0;
}

void Server::CloseConnection(size_t index) {
  Connection& conn = conns_[index];
  if (conn.fd >= 0) ::close(conn.fd);
  conn.fd = -1;
  conn.in.clear();
  conn.out.clear();
  conn.out_off = 0;
  conn.eof = false;
  conn.line_start_ns = 0;
  conn.last_recv_ns = 0;
  conn.ring.reset();
}

obs::Json Server::StatsJson(const std::string& view) {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  const obs::HistogramSnapshot lat =
      obs::Registry::Global().GetHistogram("serve.request_us")->Snapshot();
  const int64_t allocs = TensorAllocations();
  const double qps =
      uptime > 0.0 ? static_cast<double>(session_->requests()) / uptime : 0.0;
  obs::Registry::Global().GetGauge("serve.qps")->Set(qps);

  obs::Json out = obs::Json::Object();
  out.Set("ok", obs::Json::Bool(true));
  out.Set("op", obs::Json::Str("stats"));
  out.Set("entities", obs::Json::Int(session_->EntityCount()));
  out.Set("requests", obs::Json::Int(session_->requests()));
  out.Set("p50_us", obs::Json::Int(lat.ApproxQuantile(0.5)));
  out.Set("p99_us", obs::Json::Int(lat.ApproxQuantile(0.99)));
  out.Set("mean_us", obs::Json::Number(lat.Mean()));
  out.Set("qps", obs::Json::Number(qps));
  out.Set("uptime_s", obs::Json::Number(uptime));
  // Tensor heap allocations since the previous stats op — the wire-level
  // view of the zero-alloc steady state (0 once every client entity is
  // warm and shapes have stabilized; asserted by the CI serve-smoke job).
  out.Set("tensor_allocations_delta", obs::Json::Int(allocs - alloc_marker_));
  alloc_marker_ = allocs;

  // Entity-cache health (counters live in the metric registry and are
  // cumulative over the process).
  obs::Registry& reg = obs::Registry::Global();
  obs::Json cache = obs::Json::Object();
  cache.Set("hits", obs::Json::Int(reg.GetCounter("serve.cache_hits")->Value()));
  cache.Set("misses",
            obs::Json::Int(reg.GetCounter("serve.cache_misses")->Value()));
  cache.Set("evictions",
            obs::Json::Int(reg.GetCounter("serve.evictions")->Value()));
  const obs::HistogramSnapshot age =
      reg.GetHistogram("serve.eviction_age_ticks")->Snapshot();
  cache.Set("eviction_age_p50_ticks", obs::Json::Int(age.ApproxQuantile(0.5)));
  out.Set("cache", std::move(cache));

  if (telemetry_ != nullptr && telemetry_->armed()) {
    out.Set("stages", telemetry_->StageStatsJson());
    out.Set("requests_logged", obs::Json::Int(telemetry_->requests_recorded()));
    out.Set("slow_count", obs::Json::Int(telemetry_->slow_count()));
    if (view == "slow") out.Set("slow_requests", telemetry_->SlowRequestsJson());
  }
  return out;
}

void Server::Dispatch(std::vector<Request>* requests) {
  const core::TGCRNConfig& mc = session_->model_config();
  size_t i = 0;
  while (i < requests->size()) {
    Request& request = (*requests)[i];
    if (!request.valid) {
      if (tracing_) request.trace.Stamp(kStageBatchWait, NowNs());
      SendJson(&request, ErrorLine(request.op, request.error),
               /*error=*/true);
      ++i;
      continue;
    }
    if (request.op == "observe") {
      // Batch the maximal run of valid observes; the session chunks it
      // into kernel waves and keeps per-entity ordering.
      size_t end = i;
      std::vector<Observation> batch;
      while (end < requests->size() && (*requests)[end].valid &&
             (*requests)[end].op == "observe") {
        Request& r = (*requests)[end];
        if (r.entity.empty() ||
            static_cast<int64_t>(r.values.size()) !=
                mc.num_nodes * mc.input_dim ||
            r.slot < 0 || r.slot >= mc.steps_per_day) {
          break;
        }
        Observation ob;
        ob.entity = r.entity;
        ob.slot = r.slot;
        ob.values = std::move(r.values);
        batch.push_back(std::move(ob));
        ++end;
      }
      if (batch.empty()) {
        if (tracing_) request.trace.Stamp(kStageBatchWait, NowNs());
        SendJson(&request,
                 ErrorLine("observe",
                           "observe needs entity, slot in [0, steps_per_day) "
                           "and N*d values"),
                 /*error=*/true);
        ++i;
        continue;
      }
      if (tracing_) {
        const int64_t now = NowNs();
        for (size_t k = i; k < end; ++k) {
          (*requests)[k].trace.Stamp(kStageBatchWait, now);
        }
      }
      const InferenceSession::ObserveResult result =
          session_->Observe(batch);
      for (size_t k = 0; k < batch.size(); ++k) {
        Request& r = (*requests)[i + k];
        if (tracing_) {
          const WaveTiming& wave =
              session_->wave_timings()[result.wave_index[k]];
          r.trace.entity_count = 1;
          r.trace.batch_width = static_cast<int32_t>(wave.active);
          r.trace.Stamp(kStageGather, wave.gather_end_ns);
          r.trace.Stamp(kStageKernel, wave.kernel_end_ns);
          r.trace.Stamp(kStageScatter, wave.scatter_end_ns);
          telemetry_->drift().RecordObservation(batch[k].entity,
                                                result.steps[k], batch[k].slot,
                                                batch[k].values.data());
        }
        obs::Json out = obs::Json::Object();
        out.Set("ok", obs::Json::Bool(true));
        out.Set("op", obs::Json::Str("observe"));
        out.Set("entity", obs::Json::Str(batch[k].entity));
        out.Set("steps", obs::Json::Int(result.steps[k]));
        SendJson(&r, std::move(out), /*error=*/false);
      }
      if (tracing_) telemetry_->MaybeEmitDrift();
      i = end;
    } else if (request.op == "forecast") {
      // Batch the run, answering cold/unknown entities with errors and
      // the warm remainder from one batched Forecast call.
      size_t end = i;
      while (end < requests->size() && (*requests)[end].valid &&
             (*requests)[end].op == "forecast") {
        ++end;
      }
      if (tracing_) {
        const int64_t now = NowNs();
        for (size_t k = i; k < end; ++k) {
          (*requests)[k].trace.Stamp(kStageBatchWait, now);
        }
      }
      std::vector<size_t> warm;
      for (size_t k = i; k < end; ++k) {
        if (session_->StepsFor((*requests)[k].entity) > 0) warm.push_back(k);
      }
      Tensor forecasts;
      std::vector<int64_t> steps;
      if (!warm.empty()) {
        std::vector<std::string> names;
        names.reserve(warm.size());
        for (size_t k : warm) names.push_back((*requests)[k].entity);
        session_->Forecast(names, &forecasts, &steps);
      }
      size_t warm_index = 0;
      for (size_t k = i; k < end; ++k) {
        Request& r = (*requests)[k];
        if (warm_index < warm.size() && warm[warm_index] == k) {
          const float* row = forecasts.data() +
                             static_cast<int64_t>(warm_index) * mc.horizon *
                                 mc.num_nodes * mc.output_dim;
          if (tracing_) {
            // Forecast waves are contiguous chunks of batch_max rows.
            const size_t ordinal =
                warm_index / static_cast<size_t>(session_->config().batch_max);
            const WaveTiming& wave = session_->wave_timings()[ordinal];
            r.trace.entity_count = 1;
            r.trace.batch_width = static_cast<int32_t>(wave.active);
            r.trace.Stamp(kStageGather, wave.gather_end_ns);
            r.trace.Stamp(kStageKernel, wave.kernel_end_ns);
            r.trace.Stamp(kStageScatter, wave.scatter_end_ns);
            telemetry_->drift().RecordForecast(r.entity, steps[warm_index],
                                               row);
          }
          obs::Json grid = obs::Json::Array();
          for (int64_t q = 0; q < mc.horizon; ++q) {
            obs::Json nodes = obs::Json::Array();
            for (int64_t node = 0; node < mc.num_nodes; ++node) {
              obs::Json feats = obs::Json::Array();
              for (int64_t f = 0; f < mc.output_dim; ++f) {
                feats.Append(obs::Json::Number(
                    row[(q * mc.num_nodes + node) * mc.output_dim + f]));
              }
              nodes.Append(std::move(feats));
            }
            grid.Append(std::move(nodes));
          }
          obs::Json out = obs::Json::Object();
          out.Set("ok", obs::Json::Bool(true));
          out.Set("op", obs::Json::Str("forecast"));
          out.Set("entity", obs::Json::Str(r.entity));
          out.Set("steps", obs::Json::Int(steps[warm_index]));
          out.Set("forecast", std::move(grid));
          SendJson(&r, std::move(out), /*error=*/false);
          ++warm_index;
        } else {
          SendJson(&r,
                   ErrorLine("forecast", "entity " + r.entity +
                                             " has no observations (send "
                                             "observe first)"),
                   /*error=*/true);
        }
      }
      i = end;
    } else if (request.op == "evict") {
      if (tracing_) {
        request.trace.Stamp(kStageBatchWait, NowNs());
        request.trace.entity_count = 1;
      }
      const bool existed = session_->Evict(request.entity);
      obs::Json out = obs::Json::Object();
      out.Set("ok", obs::Json::Bool(true));
      out.Set("op", obs::Json::Str("evict"));
      out.Set("entity", obs::Json::Str(request.entity));
      out.Set("existed", obs::Json::Bool(existed));
      SendJson(&request, std::move(out), /*error=*/false);
      ++i;
    } else if (request.op == "stats") {
      if (tracing_) request.trace.Stamp(kStageBatchWait, NowNs());
      SendJson(&request, StatsJson(request.view), /*error=*/false);
      ++i;
    } else if (request.op == "shutdown") {
      if (tracing_) request.trace.Stamp(kStageBatchWait, NowNs());
      obs::Json out = obs::Json::Object();
      out.Set("ok", obs::Json::Bool(true));
      out.Set("op", obs::Json::Str("shutdown"));
      SendJson(&request, std::move(out), /*error=*/false);
      shutdown_ = true;
      return;  // drop anything queued after the shutdown
    } else {
      if (tracing_) request.trace.Stamp(kStageBatchWait, NowNs());
      SendJson(&request,
               ErrorLine(request.op,
                         "unknown op (observe|forecast|evict|stats|shutdown)"),
               /*error=*/true);
      ++i;
    }
  }
}

void Server::Run() {
  while (!shutdown_ && !stop_.load(std::memory_order_relaxed)) {
    // One relaxed load per round decides whether this round stamps
    // traces; disarmed serving takes no other telemetry branches.
    tracing_ = telemetry_ != nullptr && obs::RpcTracingArmed();
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    std::vector<size_t> fd_conn;  // fds[1 + j] belongs to conns_[fd_conn[j]]
    for (size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i].fd < 0) continue;
      const short events =
          POLLIN | (conns_[i].pending_out() > 0 ? POLLOUT : 0);
      fds.push_back({conns_[i].fd, events, 0});
      fd_conn.push_back(i);
    }
    const int ready = ::poll(fds.data(), fds.size(), 200 /*ms*/);
    if (ready <= 0) continue;

    if (fds[0].revents & POLLIN) AcceptNew();
    std::vector<Request> requests;
    for (size_t j = 0; j < fd_conn.size(); ++j) {
      const size_t index = fd_conn[j];
      if (fds[1 + j].revents & POLLOUT) FlushOutput(index);
      if (conns_[index].fd >= 0 &&
          (fds[1 + j].revents & (POLLIN | POLLHUP | POLLERR))) {
        ReadConnection(index);
        if (conns_[index].fd >= 0) ParseLines(index, &requests);
      }
    }
    Dispatch(&requests);
    for (size_t i = 0; i < conns_.size(); ++i) {
      // A half-closed peer may still be reading: hold the connection
      // until its buffered responses drain (or error out).
      if (conns_[i].fd >= 0 && conns_[i].eof &&
          conns_[i].pending_out() == 0) {
        CloseConnection(i);
      }
    }
  }

  // Best-effort drain of buffered responses (the shutdown ack, plus
  // anything a slow reader still owes) — bounded so a stalled peer
  // cannot block process exit.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    std::vector<pollfd> fds;
    std::vector<size_t> fd_conn;
    for (size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i].fd < 0 || conns_[i].pending_out() == 0) continue;
      fds.push_back({conns_[i].fd, POLLOUT, 0});
      fd_conn.push_back(i);
    }
    if (fds.empty() || std::chrono::steady_clock::now() >= deadline) break;
    if (::poll(fds.data(), fds.size(), 100 /*ms*/) <= 0) continue;
    for (size_t j = 0; j < fd_conn.size(); ++j) {
      if (fds[j].revents & (POLLOUT | POLLHUP | POLLERR)) {
        FlushOutput(fd_conn[j]);
      }
    }
  }

  // Whatever ended the loop (shutdown op, RequestStop from a signal
  // handler), leave a complete access log: final drift block, slow
  // exemplars, close. Idempotent — the abort flush hook may also run.
  if (telemetry_ != nullptr) telemetry_->Flush();
}

}  // namespace serve
}  // namespace tgcrn
