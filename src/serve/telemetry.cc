// Copyright 2026 TGCRN Reproduction Authors
#include "serve/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace tgcrn {
namespace serve {
namespace {

const char* const kStageNames[kServeStageCount] = {
    "read",   "parse",   "batch_wait", "gather",
    "kernel", "scatter", "serialize",  "flush",
};

const char* const kOpNames[] = {
    "observe", "forecast", "evict", "stats", "shutdown", "other",
};

int64_t EnvInt64(const char* value, int64_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  const long long parsed = std::atoll(value);
  return parsed >= 0 ? parsed : fallback;
}

// The single armed telemetry instance, reachable from the observability
// flush hook (abort path / SIGTERM) without plumbing a pointer there.
ServeTelemetry* g_active_telemetry = nullptr;

void FlushActiveTelemetry() {
  if (g_active_telemetry != nullptr) g_active_telemetry->Flush();
}

}  // namespace

const char* ServeStageName(int stage) {
  return stage >= 0 && stage < kServeStageCount ? kStageNames[stage]
                                                : "unknown";
}

const char* ServeOpName(int op) {
  return op >= kOpObserve && op <= kOpOther ? kOpNames[op] : "other";
}

TelemetryConfig TelemetryConfig::FromEnv() {
  TelemetryConfig config;
  const char* path = std::getenv("TGCRN_SERVE_ACCESS_LOG");
  if (path != nullptr) config.access_log_path = path;
  config.slow_us =
      EnvInt64(std::getenv("TGCRN_SERVE_SLOW_US"), config.slow_us);
  config.drift_every =
      EnvInt64(std::getenv("TGCRN_SERVE_DRIFT_EVERY"), config.drift_every);
  return config;
}

// ------------------------------------------------------- DriftMonitor --

DriftMonitor::DriftMonitor(InferenceSession* session,
                           const TelemetryConfig& config)
    : session_(session),
      drift_every_(config.drift_every),
      max_tracked_(config.drift_max_entities) {
  const core::TGCRNConfig& mc = session_->model_config();
  q_ = mc.horizon;
  n_ = mc.num_nodes;
  d_ = mc.output_dim;
  // Residual matching compares observed [N, input_dim] against forecast
  // [N, output_dim] channels pairwise; with asymmetric dims only the
  // graph probe and coverage denominators stay meaningful.
  horizon_count_.assign(static_cast<size_t>(q_), 0);
  horizon_abs_.assign(static_cast<size_t>(q_), 0.0);
  horizon_sq_.assign(static_cast<size_t>(q_), 0.0);
}

void DriftMonitor::RecordForecast(const std::string& entity, int64_t steps,
                                  const float* grid) {
  auto it = pending_.find(entity);
  if (it == pending_.end()) {
    if (static_cast<int64_t>(pending_.size()) >= max_tracked_) return;
    it = pending_.emplace(entity, PendingForecast{}).first;
  }
  PendingForecast& pending = it->second;
  pending.steps = steps;
  pending.grid.assign(grid, grid + q_ * n_ * d_);
  pending.valid = true;
}

void DriftMonitor::RecordObservation(const std::string& entity,
                                     int64_t steps, int64_t slot,
                                     const float* values) {
  ++window_observations_;
  ++total_observations_;

  // Graph probe: keep the last two consecutive readings of the first
  // entity ever observed.
  if (probe_entity_.empty()) probe_entity_ = entity;
  if (entity == probe_entity_) {
    const core::TGCRNConfig& mc = session_->model_config();
    const size_t nd = static_cast<size_t>(mc.num_nodes * mc.input_dim);
    if (probe_depth_ > 0) {
      probe_prev_.swap(probe_last_);
      probe_prev_slot_ = probe_last_slot_;
    }
    probe_last_.assign(values, values + nd);
    probe_last_slot_ = slot;
    if (probe_depth_ < 2) ++probe_depth_;
  }

  auto it = pending_.find(entity);
  if (it == pending_.end() || !it->second.valid) return;
  const PendingForecast& pending = it->second;
  const int64_t horizon = steps - pending.steps;
  if (horizon >= 1 && horizon <= q_ &&
      session_->model_config().input_dim == d_) {
    const float* row = pending.grid.data() + (horizon - 1) * n_ * d_;
    double abs_sum = 0.0, sq_sum = 0.0;
    for (int64_t j = 0; j < n_ * d_; ++j) {
      const double err = static_cast<double>(values[j]) - row[j];
      abs_sum += std::fabs(err);
      sq_sum += err * err;
    }
    const double scale = 1.0 / static_cast<double>(n_ * d_);
    horizon_abs_[horizon - 1] += abs_sum * scale;
    horizon_sq_[horizon - 1] += sq_sum * scale;
    ++horizon_count_[horizon - 1];
    ++window_matched_;
    ++total_matched_;
  }
  // Past the last horizon the forecast has nothing left to match.
  if (horizon >= q_) it->second.valid = false;
}

bool DriftMonitor::BlockDue() const {
  return drift_every_ > 0 && window_matched_ >= drift_every_;
}

obs::Json DriftMonitor::Block() {
  obs::Json block = obs::Json::Object();
  block.Set("type", obs::Json::Str("drift"));
  block.Set("block", obs::Json::Int(blocks_emitted_));
  block.Set("observations", obs::Json::Int(window_observations_));
  block.Set("matched", obs::Json::Int(window_matched_));
  block.Set("coverage",
            obs::Json::Number(
                window_observations_ > 0
                    ? static_cast<double>(window_matched_) /
                          static_cast<double>(window_observations_)
                    : 0.0));
  block.Set("total_observations", obs::Json::Int(total_observations_));
  block.Set("total_matched", obs::Json::Int(total_matched_));
  obs::Json horizons = obs::Json::Array();
  for (int64_t h = 1; h <= q_; ++h) {
    const int64_t count = horizon_count_[h - 1];
    obs::Json row = obs::Json::Object();
    row.Set("h", obs::Json::Int(h));
    row.Set("count", obs::Json::Int(count));
    row.Set("mae", obs::Json::Number(
                       count > 0 ? horizon_abs_[h - 1] / count : 0.0));
    row.Set("rmse",
            obs::Json::Number(
                count > 0 ? std::sqrt(horizon_sq_[h - 1] / count) : 0.0));
    horizons.Append(std::move(row));
  }
  block.Set("horizons", std::move(horizons));
  // Live-adjacency graph health from the probe pair (allocates; this is
  // the emission path, not the per-request path).
  obs::GraphHealthReport graph;
  if (probe_depth_ == 2 &&
      session_->CollectLiveGraphHealth(probe_prev_.data(), probe_prev_slot_,
                                       probe_last_.data(), probe_last_slot_,
                                       &graph)) {
    block.Set("graph", graph.ToJson());
  } else {
    block.Set("graph", obs::Json::Null());
  }

  std::fill(horizon_count_.begin(), horizon_count_.end(), 0);
  std::fill(horizon_abs_.begin(), horizon_abs_.end(), 0.0);
  std::fill(horizon_sq_.begin(), horizon_sq_.end(), 0.0);
  window_observations_ = 0;
  window_matched_ = 0;
  ++blocks_emitted_;
  return block;
}

// ----------------------------------------------------- ServeTelemetry --

ServeTelemetry::ServeTelemetry(TelemetryConfig config,
                               InferenceSession* session)
    : config_(std::move(config)),
      armed_(config_.armed()),
      slow_(static_cast<int>(config_.slow_capacity)),
      drift_(session, config_) {
  for (int s = 0; s < kServeStageCount; ++s) {
    stage_hist_[s] = obs::Registry::Global().GetHistogram(
        std::string("serve.stage_") + kStageNames[s] + "_us");
  }
  line_buffer_.reserve(1024);
  if (!armed_) return;
  if (!config_.access_log_path.empty()) {
    log_ = std::fopen(config_.access_log_path.c_str(), "w");
    if (log_ == nullptr) {
      std::fprintf(stderr, "[serve] cannot open access log %s\n",
                   config_.access_log_path.c_str());
    }
  }
  TGCRN_CHECK(g_active_telemetry == nullptr)
      << "one armed ServeTelemetry per process";
  g_active_telemetry = this;
  obs::SetRpcTracingArmed(true);
  obs::RegisterFlushHook(&FlushActiveTelemetry);
}

ServeTelemetry::~ServeTelemetry() {
  Flush();
  if (g_active_telemetry == this) {
    obs::UnregisterFlushHook(&FlushActiveTelemetry);
    obs::SetRpcTracingArmed(false);
    g_active_telemetry = nullptr;
  }
}

void ServeTelemetry::WriteLogLine(const char* line) {
  if (log_ == nullptr) return;
  std::fputs(line, log_);
  std::fputc('\n', log_);
}

void ServeTelemetry::WriteLogJson(const obs::Json& json) {
  if (log_ == nullptr) return;
  WriteLogLine(json.Dump().c_str());
  std::fflush(log_);  // cold path (drift blocks, exemplar dump)
}

void ServeTelemetry::RecordRequest(obs::RequestTrace* trace) {
  trace->Finalize();
  ++requests_recorded_;
  int64_t prev_ns = 0;
  for (int s = 0; s < kServeStageCount; ++s) {
    stage_hist_[s]->Observe((trace->stage_ns[s] - prev_ns) / 1000);
    prev_ns = trace->stage_ns[s];
  }
  if (log_ != nullptr) {
    char line[768];
    std::snprintf(
        line, sizeof(line),
        "{\"type\":\"request\",\"id\":%lld,\"op\":\"%s\","
        "\"status\":\"%s\",\"entities\":%d,\"batch\":%d,"
        "\"stage_us\":{\"read\":%lld,\"parse\":%lld,\"batch_wait\":%lld,"
        "\"gather\":%lld,\"kernel\":%lld,\"scatter\":%lld,"
        "\"serialize\":%lld,\"flush\":%lld},\"total_us\":%lld}",
        static_cast<long long>(trace->id), ServeOpName(trace->op),
        trace->status == 0 ? "ok" : "error", trace->entity_count,
        trace->batch_width,
        static_cast<long long>(trace->stage_ns[kStageRead] / 1000),
        static_cast<long long>(trace->stage_ns[kStageParse] / 1000),
        static_cast<long long>(trace->stage_ns[kStageBatchWait] / 1000),
        static_cast<long long>(trace->stage_ns[kStageGather] / 1000),
        static_cast<long long>(trace->stage_ns[kStageKernel] / 1000),
        static_cast<long long>(trace->stage_ns[kStageScatter] / 1000),
        static_cast<long long>(trace->stage_ns[kStageSerialize] / 1000),
        static_cast<long long>(trace->stage_ns[kStageFlush] / 1000),
        static_cast<long long>(trace->total_ns() / 1000));
    WriteLogLine(line);
  }
  if (config_.slow_us > 0 && trace->total_ns() / 1000 >= config_.slow_us) {
    slow_.Push(*trace);
  }
}

void ServeTelemetry::MaybeEmitDrift() {
  if (log_ != nullptr && drift_.BlockDue()) WriteLogJson(drift_.Block());
}

obs::Json ServeTelemetry::TraceJson(const obs::RequestTrace& trace) const {
  obs::Json out = obs::Json::Object();
  out.Set("id", obs::Json::Int(trace.id));
  out.Set("op", obs::Json::Str(ServeOpName(trace.op)));
  out.Set("status", obs::Json::Str(trace.status == 0 ? "ok" : "error"));
  out.Set("entities", obs::Json::Int(trace.entity_count));
  out.Set("batch", obs::Json::Int(trace.batch_width));
  obs::Json stages = obs::Json::Object();
  for (int s = 0; s < kServeStageCount; ++s) {
    stages.Set(kStageNames[s], obs::Json::Int(trace.stage_ns[s] / 1000));
  }
  out.Set("stage_us", std::move(stages));
  out.Set("total_us", obs::Json::Int(trace.total_ns() / 1000));
  return out;
}

obs::Json ServeTelemetry::StageStatsJson() const {
  obs::Json out = obs::Json::Object();
  for (int s = 0; s < kServeStageCount; ++s) {
    const obs::HistogramSnapshot snap = stage_hist_[s]->Snapshot();
    obs::Json stage = obs::Json::Object();
    stage.Set("count", obs::Json::Int(snap.count));
    stage.Set("p50_us", obs::Json::Int(snap.ApproxQuantile(0.5)));
    stage.Set("p90_us", obs::Json::Int(snap.ApproxQuantile(0.9)));
    stage.Set("p99_us", obs::Json::Int(snap.ApproxQuantile(0.99)));
    out.Set(kStageNames[s], std::move(stage));
  }
  return out;
}

obs::Json ServeTelemetry::SlowRequestsJson() const {
  obs::Json out = obs::Json::Array();
  for (int64_t i = 0; i < slow_.size(); ++i) {
    obs::Json entry = TraceJson(slow_.At(i));
    entry.Set("type", obs::Json::Str("slow"));
    out.Append(std::move(entry));
  }
  return out;
}

void ServeTelemetry::Flush() {
  if (flushed_) return;
  flushed_ = true;
  if (log_ != nullptr) {
    // Final drift block, then the retained slow exemplars — the "dump on
    // shutdown/abort next to the trace/metrics/prof flush" contract.
    if (drift_.HasData()) WriteLogJson(drift_.Block());
    for (int64_t i = 0; i < slow_.size(); ++i) {
      obs::Json entry = TraceJson(slow_.At(i));
      entry.Set("type", obs::Json::Str("slow"));
      WriteLogLine(entry.Dump().c_str());
    }
    std::fflush(log_);
    std::fclose(log_);
    log_ = nullptr;
  }
}

}  // namespace serve
}  // namespace tgcrn
