// Copyright 2026 TGCRN Reproduction Authors
// The inference half of the model/runtime split (DESIGN §15): a trained
// TGCRN plus the state the *runtime* owns — per-entity GCGRU hidden
// states, the scaler, micro-batching policy, and the serve metrics.
//
// An "entity" is one independent stream of [N, d] observations (one city,
// one deployment, one sensor fleet). Each observation advances that
// entity's recurrence by exactly one EncoderStep instead of replaying a
// P-step window, so serving cost per observation is O(1) in the window
// length; a forecast rolls the decoder out of the cached hidden state.
// Because TGCRN::Forward is itself built on InitState/EncoderStep/
// DecoderForecast, a warm entity's forecast is bitwise-identical to a
// direct Forward over the same window (pinned by serve_session_test).
//
// Zero-alloc steady state: the session lowers the tensor pool floor
// (TensorBufferPool::SetMinPooledElements) so every per-request temporary
// — including the sub-256-element trend factors of TagSL — is recycled,
// and pads wave batch sizes to powers of two so the pool sees a small,
// repeating set of shapes. After warm-up, an observe/forecast wave makes
// zero tensor heap allocations (pinned via the tensor.allocations
// counter, the same contract training pins per step).
//
// Thread model: the session is single-threaded (the poll-loop server and
// the bench both drive it from one thread); tensor ops inside a wave
// still use the global thread pool.
#ifndef TGCRN_SERVE_SESSION_H_
#define TGCRN_SERVE_SESSION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/tgcrn.h"
#include "data/dataset.h"
#include "obs/report.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace serve {

// Runtime knobs, each overridable by a TGCRN_SERVE_* env var
// (documented in docs/API.md and docs/SERVING.md).
struct SessionConfig {
  // Largest micro-batch (wave) handed to the batched kernels.
  int64_t batch_max = 32;  // TGCRN_SERVE_BATCH_MAX
  // Pad wave batch sizes up to the next power of two with inert zero
  // rows, so steady state cycles through O(log batch_max) tensor shapes
  // (maximizing pool hits). Per-sample independence of the eval path
  // makes padding rows bitwise-invisible to active rows.
  bool pad_batches = true;  // TGCRN_SERVE_PAD
  // Entity cache capacity; admitting one more evicts the least recently
  // used entity (serve.evictions counts them).
  int64_t max_entities = 4096;  // TGCRN_SERVE_MAX_ENTITIES
  // Pool floor installed for the session's lifetime (see header comment).
  int64_t pool_min_elements = 1;  // TGCRN_SERVE_POOL_MIN

  static SessionConfig FromEnv();
};

// One entity observation: the raw (unscaled) [N, d] reading at a
// slot-of-day. values is row-major, length N*d.
struct Observation {
  std::string entity;
  int64_t slot = 0;
  std::vector<float> values;
};

// Stage timing of one kernel wave (steady-clock ns, obs/trace clock):
// gather covers input staging plus hidden-state reassembly, kernel the
// EncoderStep/DecoderForecast call, scatter the write-back into the
// entity cache (or the output tensor, for forecasts). The telemetry
// layer turns these into per-request stage stamps.
struct WaveTiming {
  int64_t start_ns = 0;
  int64_t gather_end_ns = 0;
  int64_t kernel_end_ns = 0;
  int64_t scatter_end_ns = 0;
  int64_t active = 0;  // active (unpadded) rows in the wave
};

class InferenceSession {
 public:
  // `model` (borrowed, must outlive the session) is switched to eval mode;
  // `scaler` must be the one fitted at training time — the checkpoint
  // stores only parameters (docs/SERVING.md "Checkpoint format").
  InferenceSession(core::TGCRN* model, data::StandardScaler scaler,
                   SessionConfig config);
  ~InferenceSession();

  struct ObserveResult {
    std::vector<int64_t> steps;  // per observation: entity steps after it
    // Per observation: ordinal of the kernel wave (into wave_timings())
    // that served it.
    std::vector<int32_t> wave_index;
    int64_t evicted = 0;         // entities evicted to admit new ones
  };
  // Advances each observation's entity by one recurrent step. Unknown
  // entities are created (their first steps are the warm-up — allocations
  // during warm-up are expected; steady state is allocation-free).
  // Observations are chunked into waves of at most
  // min(batch_max, max_entities) *distinct* entities; repeats of an
  // entity land in later waves in input order. A wave's own entities are
  // never LRU victims, so an arbitrarily wide batch is served by
  // chunking instead of evicting in-flight state. CHECK-fails on a
  // values length != N*d or a slot outside [0, steps_per_day).
  ObserveResult Observe(const std::vector<Observation>& observations);

  // Batched forecast for warm entities (steps >= 1 — check StepsFor
  // first; CHECK-fails on cold/unknown entities). Fills `out` with the
  // raw-space forecast [B, Q, N, d]; row i belongs to entities[i]
  // (duplicates allowed), and steps[i] reports that entity's encoder
  // step count. Does not advance entity state.
  void Forecast(const std::vector<std::string>& entities, Tensor* out,
                std::vector<int64_t>* steps);

  // Drops one entity's cached state. Returns false if unknown.
  bool Evict(const std::string& entity);

  int64_t EntityCount() const;
  // Encoder steps consumed by an entity; -1 if unknown.
  int64_t StepsFor(const std::string& entity) const;
  int64_t requests() const { return requests_; }

  // Stage timings of the waves run by the most recent Observe/Forecast
  // call (cleared at each call's entry; storage capacity is retained so
  // steady state does not allocate). Forecast waves are contiguous
  // batch_max-sized chunks: row i of a Forecast ran in wave i/batch_max.
  const std::vector<WaveTiming>& wave_timings() const {
    return wave_timings_;
  }

  // Drift-monitor probe: assembles a [1, 2, N, d] window from two
  // consecutive raw observations of one entity and collects the learned
  // graph's health diagnostics on it (row entropy, sparsity, temporal
  // drift, top-k stability across calls). Allocates — call at drift
  // emission cadence, never per request. `prev`/`last` are raw [N*d].
  bool CollectLiveGraphHealth(const float* prev, int64_t prev_slot,
                              const float* last, int64_t last_slot,
                              obs::GraphHealthReport* out);

  const core::TGCRNConfig& model_config() const { return model_->config(); }
  const data::StandardScaler& scaler() const { return scaler_; }
  const SessionConfig& config() const { return config_; }

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

 private:
  struct EntityState {
    std::vector<Tensor> hidden;  // per layer [N, hidden_dim]
    int64_t last_slot = 0;
    int64_t steps = 0;
    uint64_t tick = 0;  // LRU stamp
  };

  // Wave batch width for `active` samples (power-of-two padded when
  // configured; padding rows are zeros and inert).
  int64_t WaveWidth(int64_t active) const;
  // Runs one observe wave (indices into `observations`, distinct
  // entities) through EncoderStep and scatters hidden states back.
  void ObserveWave(const std::vector<Observation>& observations,
                   const std::vector<size_t>& wave);
  // Runs one forecast wave; writes rows into out->mutable_data().
  void ForecastWave(const std::vector<std::string>& entities,
                    size_t begin, size_t end, Tensor* out);
  // Returns (creating if needed) `name`'s state and refreshes its LRU
  // tick; a new admission beyond max_entities evicts the LRU entity not
  // named in `protect` (the in-flight wave).
  EntityState& AdmitEntity(const std::string& name,
                           const std::unordered_set<std::string>& protect,
                           int64_t* evicted);

  core::TGCRN* model_;
  data::StandardScaler scaler_;
  SessionConfig config_;
  std::unordered_map<std::string, EntityState> entities_;
  uint64_t tick_ = 0;
  int64_t requests_ = 0;
  int64_t prior_pool_floor_ = 0;  // restored on destruction
  std::vector<WaveTiming> wave_timings_;  // last Observe/Forecast call
};

}  // namespace serve
}  // namespace tgcrn

#endif  // TGCRN_SERVE_SESSION_H_
