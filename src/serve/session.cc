// Copyright 2026 TGCRN Reproduction Authors
#include "serve/session.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "autograd/variable.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"

namespace tgcrn {
namespace serve {
namespace {

// Serve metric handles (names documented in docs/SERVING.md).
struct ServeMetrics {
  obs::Counter* requests;     // observations + forecast rows served
  obs::Counter* evictions;    // LRU evictions from the entity cache
  obs::Counter* cache_hits;    // AdmitEntity found a cached entity
  obs::Counter* cache_misses;  // AdmitEntity created (admitted) an entity
  obs::Gauge* entities;       // current entity cache population
  obs::Histogram* request_us;  // per-request latency (wave time, µs)
  obs::Histogram* batch_size;  // active rows per wave
  // Idle age of evicted entities in LRU ticks (touches elsewhere since
  // the victim's last use) — churn at small values means the cache bound
  // is too tight for the live fleet.
  obs::Histogram* eviction_age;
};

ServeMetrics& Metrics() {
  static ServeMetrics metrics{
      obs::Registry::Global().GetCounter("serve.requests"),
      obs::Registry::Global().GetCounter("serve.evictions"),
      obs::Registry::Global().GetCounter("serve.cache_hits"),
      obs::Registry::Global().GetCounter("serve.cache_misses"),
      obs::Registry::Global().GetGauge("serve.entities"),
      obs::Registry::Global().GetHistogram("serve.request_us"),
      obs::Registry::Global().GetHistogram("serve.batch_size"),
      obs::Registry::Global().GetHistogram("serve.eviction_age_ticks"),
  };
  return metrics;
}

int64_t EnvInt(const char* value, int64_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

SessionConfig SessionConfig::FromEnv() {
  SessionConfig config;
  config.batch_max =
      EnvInt(std::getenv("TGCRN_SERVE_BATCH_MAX"), config.batch_max);
  const char* pad = std::getenv("TGCRN_SERVE_PAD");
  if (pad != nullptr && std::string(pad) == "0") config.pad_batches = false;
  config.max_entities =
      EnvInt(std::getenv("TGCRN_SERVE_MAX_ENTITIES"), config.max_entities);
  config.pool_min_elements =
      EnvInt(std::getenv("TGCRN_SERVE_POOL_MIN"), config.pool_min_elements);
  return config;
}

InferenceSession::InferenceSession(core::TGCRN* model,
                                   data::StandardScaler scaler,
                                   SessionConfig config)
    : model_(model), scaler_(std::move(scaler)), config_(config) {
  TGCRN_CHECK(model_ != nullptr);
  TGCRN_CHECK(config_.batch_max > 0);
  TGCRN_CHECK(config_.max_entities > 0);
  model_->SetTraining(false);
  model_->SetTeacherForcingProbability(0.0f);
  // The zero-alloc steady state needs even sub-256-element temporaries
  // (TagSL trend factors, small rows) recycled; restore the training
  // default when the session goes away.
  TensorBufferPool& pool = TensorBufferPool::Global();
  prior_pool_floor_ = pool.min_pooled_elements();
  pool.SetMinPooledElements(config_.pool_min_elements);
  // Wave-timing storage never reallocates in steady state: one call
  // produces at most ceil(observations / wave_cap) entries.
  wave_timings_.reserve(64);
}

InferenceSession::~InferenceSession() {
  TensorBufferPool::Global().SetMinPooledElements(prior_pool_floor_);
}

int64_t InferenceSession::WaveWidth(int64_t active) const {
  if (!config_.pad_batches) return active;
  int64_t width = 1;
  while (width < active) width <<= 1;
  return width;
}

InferenceSession::EntityState& InferenceSession::AdmitEntity(
    const std::string& name,
    const std::unordered_set<std::string>& protect, int64_t* evicted) {
  auto it = entities_.find(name);
  if (it != entities_.end()) {
    it->second.tick = ++tick_;
    Metrics().cache_hits->Add(1);
    return it->second;
  }
  Metrics().cache_misses->Add(1);
  if (static_cast<int64_t>(entities_.size()) >= config_.max_entities) {
    // LRU scan over entities outside the in-flight wave — evicting a
    // wave member would strand its ObserveWave lookups. O(entities) —
    // the cache is bounded and admission is the rare path; a heap would
    // only complicate the steady state.
    auto lru = entities_.end();
    for (auto cand = entities_.begin(); cand != entities_.end(); ++cand) {
      if (protect.count(cand->first) > 0) continue;
      if (lru == entities_.end() || cand->second.tick < lru->second.tick) {
        lru = cand;
      }
    }
    // Observe caps a wave at max_entities distinct entities, so a full
    // cache always holds at least one entity outside the wave.
    TGCRN_CHECK(lru != entities_.end())
        << "entity cache holds only in-flight entities";
    Metrics().eviction_age->Observe(
        static_cast<int64_t>(tick_ - lru->second.tick));
    entities_.erase(lru);
    ++*evicted;
    Metrics().evictions->Add(1);
  }
  const core::TGCRNConfig& mc = model_->config();
  EntityState& state = entities_[name];
  state.tick = ++tick_;
  state.hidden.reserve(mc.num_layers);
  for (int64_t l = 0; l < mc.num_layers; ++l) {
    state.hidden.push_back(Tensor::Zeros({mc.num_nodes, mc.hidden_dim}));
  }
  Metrics().entities->Set(static_cast<double>(entities_.size()));
  return state;
}

void InferenceSession::ObserveWave(
    const std::vector<Observation>& observations,
    const std::vector<size_t>& wave) {
  WaveTiming timing;
  timing.start_ns = obs::internal::TraceNowNs();
  const core::TGCRNConfig& mc = model_->config();
  const int64_t n = mc.num_nodes;
  const int64_t d = mc.input_dim;
  const int64_t layers = mc.num_layers;
  const int64_t active = static_cast<int64_t>(wave.size());
  const int64_t b = WaveWidth(active);

  // Stage raw values into a pooled [B, N, d] tensor (memcpy, never
  // Tensor::FromVector — that path counts an external allocation).
  Tensor x_raw({b, n, d});
  std::vector<int64_t> slots(static_cast<size_t>(b), 0);
  std::vector<int64_t> prev_slots(static_cast<size_t>(b), 0);
  for (int64_t i = 0; i < active; ++i) {
    const Observation& ob = observations[wave[i]];
    TGCRN_CHECK_EQ(static_cast<int64_t>(ob.values.size()), n * d)
        << "entity " << ob.entity;
    TGCRN_CHECK(ob.slot >= 0 && ob.slot < mc.steps_per_day)
        << "slot " << ob.slot << " outside [0, " << mc.steps_per_day << ")";
    std::memcpy(x_raw.mutable_data() + i * n * d, ob.values.data(),
                static_cast<size_t>(n * d) * sizeof(float));
    slots[i] = ob.slot;
    const EntityState& entity = entities_.at(ob.entity);
    // Fresh entities get the same synthetic previous slot Forward's
    // t == 0 step derives (PrevSlots), keeping the two paths identical.
    prev_slots[i] = entity.steps == 0
                        ? (ob.slot + mc.steps_per_day - 1) % mc.steps_per_day
                        : entity.last_slot;
  }

  // Reassemble the batched recurrent state from the per-entity cache.
  core::TGCRNState state;
  state.hidden.reserve(layers);
  for (int64_t l = 0; l < layers; ++l) {
    Tensor h({b, n, mc.hidden_dim});
    for (int64_t i = 0; i < active; ++i) {
      const EntityState& entity = entities_.at(observations[wave[i]].entity);
      std::memcpy(h.mutable_data() + i * n * mc.hidden_dim,
                  entity.hidden[l].data(),
                  static_cast<size_t>(n * mc.hidden_dim) * sizeof(float));
    }
    state.hidden.emplace_back(std::move(h));
  }
  state.cached_adj.resize(layers);
  state.last_slots = prev_slots;
  // steps stays 0: 0 % refresh == 0, so the wave always rebuilds its
  // graphs — refresh-interval amortization is not sound across waves of
  // differently-composed entities (docs/SERVING.md "Graph refresh").
  timing.gather_end_ns = obs::internal::TraceNowNs();
  {
    ag::NoGradGuard no_grad;
    model_->EncoderStep(ag::Variable(scaler_.Transform(x_raw)), slots,
                        &state);
  }
  timing.kernel_end_ns = obs::internal::TraceNowNs();

  // Scatter the advanced hidden rows back into the entity cache.
  for (int64_t l = 0; l < layers; ++l) {
    const float* src = state.hidden[l].value().data();
    for (int64_t i = 0; i < active; ++i) {
      EntityState& entity = entities_[observations[wave[i]].entity];
      std::memcpy(entity.hidden[l].mutable_data(),
                  src + i * n * mc.hidden_dim,
                  static_cast<size_t>(n * mc.hidden_dim) * sizeof(float));
    }
  }
  for (int64_t i = 0; i < active; ++i) {
    EntityState& entity = entities_[observations[wave[i]].entity];
    entity.last_slot = slots[i];
    ++entity.steps;
    entity.tick = ++tick_;
  }

  timing.scatter_end_ns = obs::internal::TraceNowNs();
  timing.active = active;
  wave_timings_.push_back(timing);
  const int64_t us = (timing.scatter_end_ns - timing.start_ns) / 1000;
  ServeMetrics& metrics = Metrics();
  metrics.batch_size->Observe(active);
  for (int64_t i = 0; i < active; ++i) metrics.request_us->Observe(us);
  metrics.requests->Add(active);
  requests_ += active;
}

InferenceSession::ObserveResult InferenceSession::Observe(
    const std::vector<Observation>& observations) {
  ObserveResult result;
  result.steps.resize(observations.size(), 0);
  result.wave_index.resize(observations.size(), 0);
  wave_timings_.clear();
  // Waves of distinct entities: a repeated entity must see its earlier
  // observation applied first, so it starts the next wave. Admission is
  // per wave (just before it runs) with the wave's own entities shielded
  // from the LRU scan, so one batch can never evict an entity it is
  // about to step; capping a wave at max_entities distinct entities
  // keeps that shield satisfiable even for batches wider than the cache.
  const int64_t wave_cap = std::min(config_.batch_max, config_.max_entities);
  std::vector<size_t> wave;
  std::unordered_set<std::string> in_wave;
  auto flush = [&]() {
    if (wave.empty()) return;
    for (size_t index : wave) {
      AdmitEntity(observations[index].entity, in_wave, &result.evicted);
    }
    const int32_t ordinal = static_cast<int32_t>(wave_timings_.size());
    ObserveWave(observations, wave);
    for (size_t index : wave) {
      result.steps[index] = entities_.at(observations[index].entity).steps;
      result.wave_index[index] = ordinal;
    }
    wave.clear();
    in_wave.clear();
  };
  for (size_t i = 0; i < observations.size(); ++i) {
    if (static_cast<int64_t>(wave.size()) >= wave_cap ||
        in_wave.count(observations[i].entity) > 0) {
      flush();
    }
    wave.push_back(i);
    in_wave.insert(observations[i].entity);
  }
  flush();
  return result;
}

void InferenceSession::ForecastWave(const std::vector<std::string>& entities,
                                    size_t begin, size_t end, Tensor* out) {
  WaveTiming timing;
  timing.start_ns = obs::internal::TraceNowNs();
  const core::TGCRNConfig& mc = model_->config();
  const int64_t n = mc.num_nodes;
  const int64_t q = mc.horizon;
  const int64_t layers = mc.num_layers;
  const int64_t active = static_cast<int64_t>(end - begin);
  const int64_t b = WaveWidth(active);

  core::TGCRNState state;
  state.hidden.reserve(layers);
  for (int64_t l = 0; l < layers; ++l) {
    Tensor h({b, n, mc.hidden_dim});
    for (int64_t i = 0; i < active; ++i) {
      const EntityState& entity = entities_.at(entities[begin + i]);
      std::memcpy(h.mutable_data() + i * n * mc.hidden_dim,
                  entity.hidden[l].data(),
                  static_cast<size_t>(n * mc.hidden_dim) * sizeof(float));
    }
    state.hidden.emplace_back(std::move(h));
  }
  state.cached_adj.resize(layers);
  state.last_slots.assign(static_cast<size_t>(b), 0);
  std::vector<std::vector<int64_t>> y_slots(
      static_cast<size_t>(b), std::vector<int64_t>(static_cast<size_t>(q), 0));
  for (int64_t i = 0; i < active; ++i) {
    const EntityState& entity = entities_.at(entities[begin + i]);
    state.last_slots[i] = entity.last_slot;
    for (int64_t step = 0; step < q; ++step) {
      y_slots[i][step] =
          (entity.last_slot + 1 + step) % mc.steps_per_day;
    }
    entities_[entities[begin + i]].tick = ++tick_;
  }

  Tensor raw;
  timing.gather_end_ns = obs::internal::TraceNowNs();
  {
    ag::NoGradGuard no_grad;
    // The decoder always rebuilds its graph at q == 0, so decoding from a
    // reassembled state is exact (see DecoderForecast).
    ag::Variable pred = model_->DecoderForecast(&state, y_slots, nullptr);
    raw = scaler_.InverseTransform(pred.value());
  }
  timing.kernel_end_ns = obs::internal::TraceNowNs();
  const int64_t row = q * n * mc.output_dim;
  for (int64_t i = 0; i < active; ++i) {
    std::memcpy(out->mutable_data() + (begin + i) * row,
                raw.data() + i * row,
                static_cast<size_t>(row) * sizeof(float));
  }

  timing.scatter_end_ns = obs::internal::TraceNowNs();
  timing.active = active;
  wave_timings_.push_back(timing);
  const int64_t us = (timing.scatter_end_ns - timing.start_ns) / 1000;
  ServeMetrics& metrics = Metrics();
  metrics.batch_size->Observe(active);
  for (int64_t i = 0; i < active; ++i) metrics.request_us->Observe(us);
  metrics.requests->Add(active);
  requests_ += active;
}

void InferenceSession::Forecast(const std::vector<std::string>& entities,
                                Tensor* out, std::vector<int64_t>* steps) {
  const core::TGCRNConfig& mc = model_->config();
  wave_timings_.clear();
  steps->resize(entities.size());
  for (size_t i = 0; i < entities.size(); ++i) {
    const int64_t entity_steps = StepsFor(entities[i]);
    TGCRN_CHECK(entity_steps > 0)
        << "entity " << entities[i] << " has no observations";
    (*steps)[i] = entity_steps;
  }
  *out = Tensor::ForOverwrite({static_cast<int64_t>(entities.size()),
                               mc.horizon, mc.num_nodes, mc.output_dim});
  for (size_t begin = 0; begin < entities.size();
       begin += static_cast<size_t>(config_.batch_max)) {
    const size_t end = std::min(
        entities.size(), begin + static_cast<size_t>(config_.batch_max));
    ForecastWave(entities, begin, end, out);
  }
}

bool InferenceSession::CollectLiveGraphHealth(const float* prev,
                                              int64_t prev_slot,
                                              const float* last,
                                              int64_t last_slot,
                                              obs::GraphHealthReport* out) {
  const core::TGCRNConfig& mc = model_->config();
  if (prev == nullptr || last == nullptr || out == nullptr) return false;
  const int64_t nd = mc.num_nodes * mc.input_dim;
  Tensor raw({1, 2, mc.num_nodes, mc.input_dim});
  std::memcpy(raw.mutable_data(), prev,
              static_cast<size_t>(nd) * sizeof(float));
  std::memcpy(raw.mutable_data() + nd, last,
              static_cast<size_t>(nd) * sizeof(float));
  data::Batch batch;
  batch.x = scaler_.Transform(raw);
  batch.x_slots = {{prev_slot, last_slot}};
  return model_->CollectGraphHealth(batch, out);
}

bool InferenceSession::Evict(const std::string& entity) {
  const bool erased = entities_.erase(entity) > 0;
  if (erased) {
    Metrics().entities->Set(static_cast<double>(entities_.size()));
  }
  return erased;
}

int64_t InferenceSession::EntityCount() const {
  return static_cast<int64_t>(entities_.size());
}

int64_t InferenceSession::StepsFor(const std::string& entity) const {
  auto it = entities_.find(entity);
  return it == entities_.end() ? -1 : it->second.steps;
}

}  // namespace serve
}  // namespace tgcrn
