// Copyright 2026 TGCRN Reproduction Authors
// Status / Result<T> error-propagation types in the Arrow/RocksDB idiom.
// Library code does not throw; fallible public APIs (I/O, configuration,
// dataset construction) return Status or Result<T>.
#ifndef TGCRN_COMMON_STATUS_H_
#define TGCRN_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace tgcrn {

// Machine-readable error category; the message carries the human detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

// Returns a short stable name for a code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// Value-semantic success/error indicator.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    TGCRN_CHECK(!std::get<Status>(payload_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status ok_status = Status::OK();
    if (ok()) return ok_status;
    return std::get<Status>(payload_);
  }

  // Value accessors abort if the Result carries an error: callers must
  // test ok() (or use the TGCRN_ASSIGN_OR_RETURN macro) first.
  const T& ValueOrDie() const& {
    TGCRN_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    TGCRN_CHECK(ok()) << status().ToString();
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    TGCRN_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(payload_));
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace tgcrn

// Propagates a non-OK Status to the caller.
#define TGCRN_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::tgcrn::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

// Evaluates a Result<T> expression; on success binds the value, on error
// returns the Status to the caller.
#define TGCRN_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).ValueOrDie();

#define TGCRN_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define TGCRN_ASSIGN_OR_RETURN_NAME(x, y) TGCRN_ASSIGN_OR_RETURN_CONCAT(x, y)
#define TGCRN_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  TGCRN_ASSIGN_OR_RETURN_IMPL(                                               \
      TGCRN_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

#endif  // TGCRN_COMMON_STATUS_H_
