// Copyright 2026 TGCRN Reproduction Authors
// Utilities for the bench harness: aligned console tables (so bench output
// mirrors the paper's tables) and CSV export for downstream plotting.
#ifndef TGCRN_COMMON_TABLE_PRINTER_H_
#define TGCRN_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tgcrn {

// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Appends a constant-valued column: `header` on the header row, `value`
  // on every existing row. Used by the bench harness to stamp run context
  // (e.g. the resolved SIMD ISA) onto exported CSVs.
  void AddColumn(const std::string& header, const std::string& value);

  // Convenience: formats doubles with the given precision ("-" for NaN).
  static std::string Num(double value, int precision = 2);

  // Renders the table with a separator line under the header.
  std::string ToString() const;

  // Prints ToString() to stdout.
  void Print() const;

  // Writes the table as CSV. Creates parent directories if needed.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tgcrn

#endif  // TGCRN_COMMON_TABLE_PRINTER_H_
