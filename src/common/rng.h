// Copyright 2026 TGCRN Reproduction Authors
// Deterministic, seedable random number generation. Every stochastic
// component in the library (weight init, samplers, simulators, dropout)
// takes an explicit Rng so experiments are reproducible bit-for-bit.
#ifndef TGCRN_COMMON_RNG_H_
#define TGCRN_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace tgcrn {

// xoshiro256** PRNG seeded via SplitMix64. Fast, high quality, and fully
// deterministic across platforms (unlike std::mt19937 distributions, whose
// outputs are implementation-defined for e.g. normal_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  // Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      state_[i] = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
  }

  // Uniform 64-bit integer.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform float in [lo, hi).
  float Uniform(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    TGCRN_CHECK_LE(lo, hi);
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextUint64() % range);
  }

  // Standard normal via Box-Muller with caching of the second deviate.
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  // Normal with mean/stddev.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  // Poisson-distributed count with the given rate. Uses Knuth's method for
  // small rates and a normal approximation for large ones (rate > 64),
  // which is accurate enough for simulator traffic counts.
  int64_t Poisson(double rate) {
    TGCRN_CHECK_GE(rate, 0.0);
    if (rate == 0.0) return 0;
    if (rate > 64.0) {
      const double v = Gaussian(rate, std::sqrt(rate));
      return v < 0.0 ? 0 : static_cast<int64_t>(std::llround(v));
    }
    const double limit = std::exp(-rate);
    double product = NextDouble();
    int64_t count = 0;
    while (product > limit) {
      product *= NextDouble();
      ++count;
    }
    return count;
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int64_t i = static_cast<int64_t>(values->size()) - 1; i > 0; --i) {
      const int64_t j = UniformInt(0, i);
      std::swap((*values)[i], (*values)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {0, 0, 0, 0};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace tgcrn

#endif  // TGCRN_COMMON_RNG_H_
