// Copyright 2026 TGCRN Reproduction Authors
// Invariant-checking macros, following Arrow's DCHECK philosophy: a failed
// check is a programmer error (e.g. a mis-shaped matmul), not a runtime
// condition to recover from, so we print a diagnostic and abort.
#ifndef TGCRN_COMMON_CHECK_H_
#define TGCRN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tgcrn {
namespace internal {

// Best-effort flush of the observability sinks (trace rings, metric-dump
// target) before abort() — which skips atexit handlers, i.e. exactly when
// a trace is most needed. Defined in obs/trace.cc (every binary links
// libtgcrn); reentrancy-guarded and safe when neither sink is active.
void FlushObservabilityOnAbort();

// Aborts the process after printing `msg` with source location context.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "[TGCRN CHECK FAILED] %s:%d: (%s) %s\n", file, line,
               expr, msg.c_str());
  std::fflush(stderr);
  FlushObservabilityOnAbort();
  std::abort();
}

// Stream collector so call sites can write `TGCRN_CHECK(x) << "detail"`.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }
  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tgcrn

// Checks a boolean invariant; active in all build modes because the cost is
// negligible relative to the math kernels it guards.
#define TGCRN_CHECK(cond)                                                  \
  if (!(cond))                                                             \
  ::tgcrn::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define TGCRN_CHECK_EQ(a, b) \
  TGCRN_CHECK((a) == (b)) << " lhs=" << (a) << " rhs=" << (b) << " "
#define TGCRN_CHECK_NE(a, b) \
  TGCRN_CHECK((a) != (b)) << " lhs=" << (a) << " rhs=" << (b) << " "
#define TGCRN_CHECK_LT(a, b) \
  TGCRN_CHECK((a) < (b)) << " lhs=" << (a) << " rhs=" << (b) << " "
#define TGCRN_CHECK_LE(a, b) \
  TGCRN_CHECK((a) <= (b)) << " lhs=" << (a) << " rhs=" << (b) << " "
#define TGCRN_CHECK_GT(a, b) \
  TGCRN_CHECK((a) > (b)) << " lhs=" << (a) << " rhs=" << (b) << " "
#define TGCRN_CHECK_GE(a, b) \
  TGCRN_CHECK((a) >= (b)) << " lhs=" << (a) << " rhs=" << (b) << " "

#endif  // TGCRN_COMMON_CHECK_H_
