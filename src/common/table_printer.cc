// Copyright 2026 TGCRN Reproduction Authors
#include "common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace tgcrn {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  TGCRN_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  TGCRN_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddColumn(const std::string& header,
                             const std::string& value) {
  header_.push_back(header);
  for (auto& row : rows_) row.push_back(value);
}

std::string TablePrinter::Num(double value, int precision) {
  if (std::isnan(value)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec) return Status::IOError("cannot create directory " +
                                   parent.string() + ": " + ec.message());
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += "\"\"";
      else quoted += ch;
    }
    quoted += "\"";
    return quoted;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << escape(row[c]);
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace tgcrn
