// Copyright 2026 TGCRN Reproduction Authors
// Bump-pointer arena for short-lived, same-lifetime object batches.
//
// Allocation is a pointer bump inside the current block; Reset() rewinds to
// the first block in O(1) while keeping every block's capacity, so a
// steady-state allocate/reset cycle touches the system allocator only while
// the arena is still growing toward its high-water mark. The arena never
// runs destructors — callers that place non-trivial objects here must
// destroy them before Reset() (the autograd graph arena does this with an
// intrusive list walk).
//
// Not thread-safe: each arena belongs to one thread (the autograd layer
// keeps one per thread via thread_local).
#ifndef TGCRN_COMMON_ARENA_H_
#define TGCRN_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace tgcrn {
namespace common {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 1 << 20;  // 1 MiB

  explicit Arena(size_t block_bytes = kDefaultBlockBytes);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `align` (a power of two no larger
  // than alignof(std::max_align_t)). Never returns nullptr; grows by whole
  // blocks when the current one is exhausted.
  void* Allocate(size_t bytes, size_t align);

  // Convenience: raw storage suitably sized and aligned for a T. The caller
  // placement-news into it and owns the destructor call.
  template <typename T>
  void* AllocateFor() {
    return Allocate(sizeof(T), alignof(T));
  }

  // O(1) logical reset: all storage becomes reusable, no blocks are freed.
  void Reset();

  // Frees every block and returns the arena to its freshly built state.
  void ReleaseBlocks();

  struct Stats {
    size_t bytes_used = 0;       // bytes handed out since the last Reset
    size_t bytes_reserved = 0;   // total capacity across blocks
    size_t high_water_bytes = 0; // max bytes_used observed over any cycle
    size_t num_blocks = 0;
  };
  Stats stats() const;

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  // Makes block `index` current, appending a new block of at least
  // `min_bytes` if none exists yet.
  void ActivateBlock(size_t index, size_t min_bytes);

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;       // index of the block ptr_/end_ point into
  char* ptr_ = nullptr;      // next free byte in the current block
  char* end_ = nullptr;      // one past the current block's last byte
  size_t bytes_used_ = 0;
  size_t high_water_ = 0;
};

}  // namespace common
}  // namespace tgcrn

#endif  // TGCRN_COMMON_ARENA_H_
