// Copyright 2026 TGCRN Reproduction Authors
#include "common/status.h"

namespace tgcrn {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace tgcrn
