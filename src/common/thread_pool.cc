// Copyright 2026 TGCRN Reproduction Authors
#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"

namespace tgcrn {
namespace common {
namespace {

// Pool bookkeeping (see GetPoolStats). Plain relaxed atomics rather than
// obs counters so the header-visible stats need no registry lookup; the
// obs layer additionally gets busy/idle histograms below.
std::atomic<int64_t> g_parallel_for_calls{0};
std::atomic<int64_t> g_serial_runs{0};
std::atomic<int64_t> g_chunks_executed{0};
std::atomic<int64_t> g_pool_tasks_executed{0};

// Nanoseconds each worker spends running a claimed task vs waiting on the
// queue. Observed per task pull, so the cost (two clock reads) is paid per
// parallel job per worker, not per chunk.
obs::Histogram* WorkerBusyHistogram() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("threadpool.worker_busy_ns");
  return h;
}
obs::Histogram* WorkerIdleHistogram() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("threadpool.worker_idle_ns");
  return h;
}

int64_t MonotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Set while the current thread executes a ParallelFor chunk; nested
// parallel calls observe it and run serially instead of re-entering the
// pool (which would deadlock a worker waiting on its own queue).
thread_local bool tls_in_parallel_region = false;

struct ScopedRegionFlag {
  ScopedRegionFlag() { tls_in_parallel_region = true; }
  ~ScopedRegionFlag() { tls_in_parallel_region = false; }
};

// One ParallelFor invocation. Chunks are claimed by atomically incrementing
// `next`; whoever finishes the last chunk wakes the waiting caller. There
// is deliberately no early cancellation on exception: remaining chunks
// still run so completion accounting stays trivial and the pool can never
// deadlock; only the first exception is kept.
struct Job {
  std::function<void(int64_t)> chunk_fn;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr exception;
  // Innermost profiler scope open on the dispatching thread (nullptr when
  // the profiler is off): helpers attribute their chunk time to it.
  const char* prof_attr = nullptr;
};

void WorkOnJob(const std::shared_ptr<Job>& job, bool helper) {
  // Trace-only span: the caller thread already sits inside the kernel's
  // own profiler scope, so letting this span into the attribution tree
  // would steal the kernel's exclusive time. Helpers instead attribute
  // through WorkerAttributionScope (root -> "worker" -> kernel).
  obs::ScopedSpan span("ParallelFor.worker", obs::internal::kScopeTraceBit);
  obs::WorkerAttributionScope attribution(helper ? job->prof_attr : nullptr);
  while (true) {
    const int64_t c = job->next.fetch_add(1);
    if (c >= job->num_chunks) break;
    g_chunks_executed.fetch_add(1, std::memory_order_relaxed);
    {
      ScopedRegionFlag in_region;
      try {
        job->chunk_fn(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job->mu);
        if (!job->exception) job->exception = std::current_exception();
      }
    }
    if (job->done.fetch_add(1) + 1 == job->num_chunks) {
      // Lock pairs with the caller's predicate check so the final
      // increment cannot slip between its check and its wait.
      std::lock_guard<std::mutex> lock(job->mu);
      job->cv.notify_all();
    }
  }
}

// Fixed-size pool. Workers pull type-erased tasks from a FIFO queue; a
// ParallelFor enqueues one claim-loop task per helper worker, so stale
// tasks that run after the job finished exit immediately via the atomic
// chunk counter.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool pool(DefaultNumThreads());
    return pool;
  }

  ~ThreadPool() { StopWorkers(); }

  int num_threads() const { return num_threads_.load(); }

  void Resize(int total_threads) {
    if (total_threads <= 0) total_threads = DefaultNumThreads();
    std::lock_guard<std::mutex> resize_lock(resize_mu_);
    if (total_threads == num_threads_.load()) return;
    StopWorkers();
    StartWorkers(total_threads);
  }

  void Enqueue(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      tasks_.push_back(std::move(task));
    }
    queue_cv_.notify_one();
  }

 private:
  explicit ThreadPool(int total_threads) { StartWorkers(total_threads); }

  static int DefaultNumThreads() {
    if (const char* env = std::getenv("TGCRN_NUM_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) return parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }

  void StartWorkers(int total_threads) {
    TGCRN_CHECK_GE(total_threads, 1);
    stop_ = false;
    num_threads_.store(total_threads);
    for (int i = 0; i < total_threads - 1; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stop_ = true;
    }
    queue_cv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
    std::lock_guard<std::mutex> lock(queue_mu_);
    tasks_.clear();
  }

  void WorkerLoop() {
    int64_t idle_since_ns = MonotonicNs();
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      const int64_t start_ns = MonotonicNs();
      WorkerIdleHistogram()->Observe(start_ns - idle_since_ns);
      task();
      idle_since_ns = MonotonicNs();
      WorkerBusyHistogram()->Observe(idle_since_ns - start_ns);
      g_pool_tasks_executed.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::mutex resize_mu_;
  std::atomic<int> num_threads_{1};
  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace

int GetNumThreads() { return ThreadPool::Global().num_threads(); }

void SetNumThreads(int n) { ThreadPool::Global().Resize(n); }

bool InParallelRegion() { return tls_in_parallel_region; }

PoolStats GetPoolStats() {
  PoolStats stats;
  stats.num_threads = GetNumThreads();
  stats.parallel_for_calls =
      g_parallel_for_calls.load(std::memory_order_relaxed);
  stats.serial_runs = g_serial_runs.load(std::memory_order_relaxed);
  stats.chunks_executed = g_chunks_executed.load(std::memory_order_relaxed);
  stats.pool_tasks_executed =
      g_pool_tasks_executed.load(std::memory_order_relaxed);
  return stats;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  g_parallel_for_calls.fetch_add(1, std::memory_order_relaxed);
  ThreadPool& pool = ThreadPool::Global();
  const int threads = pool.num_threads();
  if (threads <= 1 || n <= grain || tls_in_parallel_region) {
    g_serial_runs.fetch_add(1, std::memory_order_relaxed);
    fn(begin, end);
    return;
  }
  // At least `grain` per chunk, and ~4 chunks per thread so stragglers
  // balance out without work stealing. Chunk boundaries only affect which
  // thread computes which outputs, never the outputs themselves.
  const int64_t target_chunks = static_cast<int64_t>(threads) * 4;
  const int64_t chunk =
      std::max(grain, (n + target_chunks - 1) / target_chunks);
  const int64_t num_chunks = (n + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    g_serial_runs.fetch_add(1, std::memory_order_relaxed);
    fn(begin, end);
    return;
  }

  auto job = std::make_shared<Job>();
  job->num_chunks = num_chunks;
  job->chunk_fn = [&fn, begin, end, chunk](int64_t c) {
    const int64_t s = begin + c * chunk;
    fn(s, std::min(end, s + chunk));
  };
  job->prof_attr = obs::CurrentProfLeafName();
  const int64_t helpers =
      std::min<int64_t>(threads - 1, num_chunks - 1);
  for (int64_t i = 0; i < helpers; ++i) {
    pool.Enqueue([job] { WorkOnJob(job, /*helper=*/true); });
  }
  WorkOnJob(job, /*helper=*/false);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock,
                 [&job] { return job->done.load() == job->num_chunks; });
  }
  if (job->exception) std::rethrow_exception(job->exception);
}

double DeterministicChunkedSum(
    int64_t n, int64_t grain,
    const std::function<double(int64_t, int64_t)>& chunk_sum) {
  if (n <= 0) return 0.0;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1) return chunk_sum(0, n);
  std::vector<double> partials(num_chunks);
  ParallelFor(0, num_chunks, 1, [&](int64_t cb, int64_t ce) {
    for (int64_t c = cb; c < ce; ++c) {
      partials[c] = chunk_sum(c * grain, std::min(n, (c + 1) * grain));
    }
  });
  // Fixed pairwise tree: partials[i] += partials[i + stride] for doubling
  // strides. The combine pattern depends only on num_chunks.
  for (int64_t stride = 1; stride < num_chunks; stride *= 2) {
    for (int64_t i = 0; i + stride < num_chunks; i += 2 * stride) {
      partials[i] += partials[i + stride];
    }
  }
  return partials[0];
}

}  // namespace common
}  // namespace tgcrn
