// Copyright 2026 TGCRN Reproduction Authors
#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace tgcrn {
namespace common {
namespace {

// -1 = not yet resolved; otherwise a SimdIsa value. A relaxed atomic is
// enough: resolution is idempotent and every kernel entry point reads it
// with a single relaxed load.
std::atomic<int> g_active_isa{-1};

SimdIsa ResolveFromEnv() {
  const char* env = std::getenv("TGCRN_ISA");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return (Avx2CompiledIn() && CpuSupportsAvx2()) ? SimdIsa::kAvx2
                                                   : SimdIsa::kScalar;
  }
  if (std::strcmp(env, "scalar") == 0) return SimdIsa::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    TGCRN_CHECK(Avx2CompiledIn())
        << "TGCRN_ISA=avx2 but the AVX2 kernels were compiled out "
           "(TGCRN_DISABLE_AVX2 or non-x86 build)";
    TGCRN_CHECK(CpuSupportsAvx2())
        << "TGCRN_ISA=avx2 but this CPU does not report AVX2+FMA";
    return SimdIsa::kAvx2;
  }
  TGCRN_CHECK(false) << "unknown TGCRN_ISA value '" << env
                     << "' (want scalar|avx2|auto)";
  return SimdIsa::kScalar;  // unreachable
}

}  // namespace

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

bool Avx2CompiledIn() {
#if defined(TGCRN_DISABLE_AVX2) || !(defined(__x86_64__) || defined(_M_X64))
  return false;
#else
  return true;
#endif
}

SimdIsa ActiveSimdIsa() {
  int isa = g_active_isa.load(std::memory_order_relaxed);
  if (isa < 0) {
    isa = static_cast<int>(ResolveFromEnv());
    g_active_isa.store(isa, std::memory_order_relaxed);
  }
  return static_cast<SimdIsa>(isa);
}

void SetSimdIsa(SimdIsa isa) {
  if (isa == SimdIsa::kAvx2) {
    TGCRN_CHECK(Avx2CompiledIn() && CpuSupportsAvx2())
        << "SetSimdIsa(kAvx2) on a machine/build without AVX2+FMA";
  }
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void ResetSimdIsaFromEnv() {
  g_active_isa.store(static_cast<int>(ResolveFromEnv()),
                     std::memory_order_relaxed);
}

const char* SimdIsaName(SimdIsa isa) {
  return isa == SimdIsa::kAvx2 ? "avx2" : "scalar";
}

}  // namespace common
}  // namespace tgcrn
