// Copyright 2026 TGCRN Reproduction Authors
// A fixed-size thread pool (no work stealing) and the two parallel
// primitives every hot kernel in the repository is built on:
//
//  * ParallelFor(begin, end, grain, fn) — splits [begin, end) into disjoint
//    contiguous subranges and runs fn(sub_begin, sub_end) on the pool, with
//    the calling thread participating. Used for kernels whose outputs are
//    element-independent (elementwise ops, matmul rows, softmax rows):
//    chunk boundaries cannot change any output value, so results are
//    bitwise identical at every thread count.
//  * DeterministicChunkedSum(n, grain, chunk_sum) — a reduction whose
//    float semantics are fixed by construction: [0, n) is cut into
//    ceil(n/grain) chunks (a function of n and grain only, never of the
//    thread count), per-chunk partials are computed in parallel, and the
//    partials are combined by a fixed pairwise tree. The same bits come
//    out at 1, 2 or 64 threads.
//
// Thread count: defaults to TGCRN_NUM_THREADS if set, else
// std::thread::hardware_concurrency(). SetNumThreads(1) gives exact legacy
// single-threaded execution (no pool threads touch any data). Nested
// ParallelFor calls (a parallel region entered from inside a chunk) degrade
// to serial execution instead of deadlocking.
#ifndef TGCRN_COMMON_THREAD_POOL_H_
#define TGCRN_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <functional>

namespace tgcrn {
namespace common {

// Total number of threads participating in parallel regions, including the
// calling thread. Always >= 1.
int GetNumThreads();

// Sets the parallel width. n <= 0 restores the default (TGCRN_NUM_THREADS
// env var if set, else hardware concurrency). Not safe to call concurrently
// with an active parallel region.
void SetNumThreads(int n);

// RAII guard for tests: sets the thread count and restores the previous
// value on destruction.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) : previous_(GetNumThreads()) {
    SetNumThreads(n);
  }
  ~ScopedNumThreads() { SetNumThreads(previous_); }
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int previous_;
};

// Runs fn over disjoint contiguous subranges covering [begin, end). `grain`
// is the minimum subrange length (>= 1); ranges shorter than `grain`, a
// thread count of 1, and calls from inside a parallel region all run
// fn(begin, end) serially on the calling thread. The first exception thrown
// by any chunk is rethrown on the calling thread after all chunks finish.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

// Deterministic parallel reduction over [0, n): chunk_sum(c_begin, c_end)
// returns the partial for one fixed chunk of at most `grain` elements;
// partials are combined by a fixed pairwise tree. The chunking and the
// combine order depend only on n and grain, so the result is bitwise
// identical regardless of the thread count (including 1).
double DeterministicChunkedSum(
    int64_t n, int64_t grain,
    const std::function<double(int64_t, int64_t)>& chunk_sum);

// True while the calling thread is executing inside a ParallelFor chunk
// (used by kernels that must pick the serial path when nested).
bool InParallelRegion();

// Monotonic pool bookkeeping since process start, for the observability
// layer and tests. All fields are gathered from relaxed atomics: totals are
// exact once the pool is quiescent, approximate while work is in flight.
struct PoolStats {
  int num_threads = 1;             // current parallel width (incl. caller)
  int64_t parallel_for_calls = 0;  // total ParallelFor invocations
  // Invocations that ran as a single serial call on the calling thread
  // (width 1, range <= grain, or nested inside a parallel region).
  int64_t serial_runs = 0;
  // Chunks claimed and executed across all parallel jobs. The pool has no
  // work stealing, so this is also the steal-free claim count.
  int64_t chunks_executed = 0;
  // Type-erased tasks pool workers pulled from the queue (one claim loop
  // per helper per parallel job, plus stale wakeups).
  int64_t pool_tasks_executed = 0;
};
PoolStats GetPoolStats();

}  // namespace common
}  // namespace tgcrn

#endif  // TGCRN_COMMON_THREAD_POOL_H_
