// Copyright 2026 TGCRN Reproduction Authors
// Minimal leveled logging to stderr. Training loops use LOG(INFO) for epoch
// summaries; set TGCRN_LOG_LEVEL=WARNING (or ERROR) to silence them.
#ifndef TGCRN_COMMON_LOGGING_H_
#define TGCRN_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

namespace tgcrn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal {

// Reads the minimum level once from the TGCRN_LOG_LEVEL environment variable.
inline LogLevel MinLogLevel() {
  static const LogLevel level = [] {
    const char* env = std::getenv("TGCRN_LOG_LEVEL");
    if (env == nullptr) return LogLevel::kInfo;
    if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
    if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
    if (std::strcmp(env, "WARNING") == 0) return LogLevel::kWarning;
    if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
    return LogLevel::kInfo;
  }();
  return level;
}

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file)
            << ":" << line << "] ";
  }
  ~LogMessage() {
    if (level_ >= MinLogLevel()) {
      stream_ << "\n";
      std::fputs(stream_.str().c_str(), stderr);
      std::fflush(stderr);
    }
  }
  std::ostringstream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "D";
      case LogLevel::kInfo:
        return "I";
      case LogLevel::kWarning:
        return "W";
      case LogLevel::kError:
        return "E";
    }
    return "?";
  }
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tgcrn

#define TGCRN_LOG(level)                                                 \
  ::tgcrn::internal::LogMessage(::tgcrn::LogLevel::k##level, __FILE__, \
                                __LINE__)                                \
      .stream()

#endif  // TGCRN_COMMON_LOGGING_H_
