// Copyright 2026 TGCRN Reproduction Authors
// Minimal leveled logging to stderr. Training loops use LOG(INFO) for epoch
// summaries; set TGCRN_LOG_LEVEL=WARNING (or ERROR) to silence them, or call
// SetMinLogLevel() to change the threshold at runtime (the env var only
// provides the initial value).
#ifndef TGCRN_COMMON_LOGGING_H_
#define TGCRN_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>

namespace tgcrn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal {

inline LogLevel LogLevelFromEnv() {
  const char* env = std::getenv("TGCRN_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "WARNING") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

// Mutable threshold, seeded from TGCRN_LOG_LEVEL on first use.
inline std::atomic<int>& MinLogLevelStorage() {
  static std::atomic<int> level{static_cast<int>(LogLevelFromEnv())};
  return level;
}

inline LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      MinLogLevelStorage().load(std::memory_order_relaxed));
}

// Per-call-site occurrence counter backing TGCRN_LOG_EVERY_N. Returns true
// on the 1st, (n+1)th, (2n+1)th, ... call from the given (file, line).
// Logging sites are not hot paths, so a mutex-guarded map is fine.
inline bool ShouldLogEveryN(const char* file, int line, int64_t n) {
  if (n <= 1) return true;
  static std::mutex mu;
  static auto* counts = new std::map<std::pair<std::string, int>, int64_t>();
  std::lock_guard<std::mutex> lock(mu);
  int64_t& count = (*counts)[{file, line}];
  return count++ % n == 0;
}

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file)
            << ":" << line << "] ";
  }
  ~LogMessage() {
    if (level_ >= MinLogLevel()) {
      stream_ << "\n";
      std::fputs(stream_.str().c_str(), stderr);
      std::fflush(stderr);
    }
  }
  std::ostringstream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "D";
      case LogLevel::kInfo:
        return "I";
      case LogLevel::kWarning:
        return "W";
      case LogLevel::kError:
        return "E";
    }
    return "?";
  }
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

// Sets the minimum level emitted from this point on (overrides the
// TGCRN_LOG_LEVEL environment variable). Thread-safe.
inline void SetMinLogLevel(LogLevel level) {
  internal::MinLogLevelStorage().store(static_cast<int>(level),
                                       std::memory_order_relaxed);
}

inline LogLevel GetMinLogLevel() { return internal::MinLogLevel(); }

}  // namespace tgcrn

#define TGCRN_LOG(level)                                                 \
  ::tgcrn::internal::LogMessage(::tgcrn::LogLevel::k##level, __FILE__, \
                                __LINE__)                                \
      .stream()

// Emits on the 1st, (n+1)th, (2n+1)th, ... execution of this statement.
// The dangling-else shape keeps it safe inside unbraced if/else and only
// evaluates the streamed expressions on emitting calls.
#define TGCRN_LOG_EVERY_N(level, n)                                      \
  if (!::tgcrn::internal::ShouldLogEveryN(__FILE__, __LINE__, (n))) {    \
  } else                                                                 \
    TGCRN_LOG(level)

#endif  // TGCRN_COMMON_LOGGING_H_
