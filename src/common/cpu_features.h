// Copyright 2026 TGCRN Reproduction Authors
// Runtime CPU feature detection and the process-wide SIMD ISA selection
// that the tensor kernels dispatch on (see tensor/kernels/gemm.h and
// tensor/kernels/vmath.h).
//
// Resolution order for the active ISA:
//   1. SetSimdIsa() — programmatic override (tests, benchmarks).
//   2. TGCRN_ISA env var — "scalar" forces the scalar kernels, "avx2"
//      requires AVX2+FMA (aborts with a clear error if the CPU or the
//      build lacks it), "auto"/unset picks the best supported level.
//   3. CPUID — AVX2 is selected only when the CPU reports AVX2 and FMA
//      *and* the AVX2 kernels were compiled in (-DTGCRN_DISABLE_AVX2=ON
//      or a non-x86 target compiles them out).
//
// Determinism contract: results are bitwise identical across thread
// counts and pool/arena toggles *at a fixed ISA level*. Different ISA
// levels may differ in the last bits (FMA contraction, vectorized
// transcendental polynomials); TGCRN_ISA=scalar reproduces the legacy
// serial arithmetic exactly.
#ifndef TGCRN_COMMON_CPU_FEATURES_H_
#define TGCRN_COMMON_CPU_FEATURES_H_

namespace tgcrn {
namespace common {

enum class SimdIsa {
  kScalar = 0,  // portable scalar kernels (legacy bit-exact arithmetic)
  kAvx2 = 1,    // AVX2 + FMA microkernels
};

// True if the running CPU reports AVX2 and FMA support (cached CPUID).
bool CpuSupportsAvx2();

// True if the AVX2 kernels were compiled into this binary.
bool Avx2CompiledIn();

// The ISA every dispatching kernel entry point uses right now. Never
// returns kAvx2 unless it is both compiled in and CPU-supported.
SimdIsa ActiveSimdIsa();

// Overrides the active ISA. Aborts (TGCRN_CHECK) if `isa` is kAvx2 on a
// machine or build that cannot execute it: an explicit request is a
// contract, not a hint. Not safe to call concurrently with running
// kernels.
void SetSimdIsa(SimdIsa isa);

// Re-reads TGCRN_ISA from the environment and re-resolves the active
// level (test hook; the env var is otherwise read once at first use).
void ResetSimdIsaFromEnv();

// "scalar" / "avx2" for logs and error messages.
const char* SimdIsaName(SimdIsa isa);

// RAII guard for tests and benchmarks: pins the ISA, restores on exit.
class ScopedSimdIsa {
 public:
  explicit ScopedSimdIsa(SimdIsa isa) : previous_(ActiveSimdIsa()) {
    SetSimdIsa(isa);
  }
  ~ScopedSimdIsa() { SetSimdIsa(previous_); }
  ScopedSimdIsa(const ScopedSimdIsa&) = delete;
  ScopedSimdIsa& operator=(const ScopedSimdIsa&) = delete;

 private:
  SimdIsa previous_;
};

}  // namespace common
}  // namespace tgcrn

#endif  // TGCRN_COMMON_CPU_FEATURES_H_
