// Copyright 2026 TGCRN Reproduction Authors
#include "common/arena.h"

#include <algorithm>

#include "common/check.h"

namespace tgcrn {
namespace common {

Arena::Arena(size_t block_bytes) : block_bytes_(std::max<size_t>(block_bytes, 256)) {}

void Arena::ActivateBlock(size_t index, size_t min_bytes) {
  if (index == blocks_.size()) {
    Block block;
    block.size = std::max(block_bytes_, min_bytes);
    block.data = std::make_unique<char[]>(block.size);
    blocks_.push_back(std::move(block));
  }
  current_ = index;
  ptr_ = blocks_[current_].data.get();
  end_ = ptr_ + blocks_[current_].size;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  TGCRN_CHECK(align != 0 && (align & (align - 1)) == 0)
      << "alignment must be a power of two";
  if (ptr_ == nullptr) ActivateBlock(0, bytes + align);
  auto aligned = [align](char* p) {
    const auto v = reinterpret_cast<uintptr_t>(p);
    return reinterpret_cast<char*>((v + align - 1) & ~(uintptr_t{align} - 1));
  };
  char* start = aligned(ptr_);
  if (start + bytes > end_) {
    // Current block exhausted: move to (or create) the next one. Blocks
    // allocated in earlier cycles are reused in order after Reset().
    ActivateBlock(current_ + 1, bytes + align);
    start = aligned(ptr_);
    TGCRN_CHECK(start + bytes <= end_);
  }
  bytes_used_ += static_cast<size_t>(start + bytes - ptr_);
  ptr_ = start + bytes;
  return start;
}

void Arena::Reset() {
  high_water_ = std::max(high_water_, bytes_used_);
  bytes_used_ = 0;
  if (!blocks_.empty()) {
    current_ = 0;
    ptr_ = blocks_[0].data.get();
    end_ = ptr_ + blocks_[0].size;
  }
}

void Arena::ReleaseBlocks() {
  Reset();
  blocks_.clear();
  blocks_.shrink_to_fit();
  current_ = 0;
  ptr_ = nullptr;
  end_ = nullptr;
}

Arena::Stats Arena::stats() const {
  Stats s;
  s.bytes_used = bytes_used_;
  for (const Block& b : blocks_) s.bytes_reserved += b.size;
  s.high_water_bytes = std::max(high_water_, bytes_used_);
  s.num_blocks = blocks_.size();
  return s;
}

}  // namespace common
}  // namespace tgcrn
