// Copyright 2026 TGCRN Reproduction Authors
#include "graph/graph_ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace tgcrn {
namespace graph {

namespace {

void CheckSquare(const Tensor& adj) {
  TGCRN_CHECK_EQ(adj.dim(), 2);
  TGCRN_CHECK_EQ(adj.size(0), adj.size(1));
}

}  // namespace

Tensor RandomWalkNormalize(const Tensor& adj) {
  CheckSquare(adj);
  const int64_t n = adj.size(0);
  Tensor out = adj.Clone();
  float* p = out.mutable_data();
  for (int64_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < n; ++j) row_sum += p[i * n + j];
    if (row_sum > 1e-12) {
      const float inv = static_cast<float>(1.0 / row_sum);
      for (int64_t j = 0; j < n; ++j) p[i * n + j] *= inv;
    }
  }
  return out;
}

Tensor SymmetricNormalize(const Tensor& adj, bool add_self_loops) {
  CheckSquare(adj);
  const int64_t n = adj.size(0);
  Tensor a = add_self_loops ? adj.Add(Tensor::Eye(n)) : adj.Clone();
  std::vector<float> inv_sqrt_deg(n, 0.0f);
  const float* p = a.data();
  for (int64_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (int64_t j = 0; j < n; ++j) deg += p[i * n + j];
    inv_sqrt_deg[i] =
        deg > 1e-12 ? static_cast<float>(1.0 / std::sqrt(deg)) : 0.0f;
  }
  Tensor out = a.Clone();
  float* q = out.mutable_data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      q[i * n + j] *= inv_sqrt_deg[i] * inv_sqrt_deg[j];
    }
  }
  return out;
}

std::vector<Tensor> DiffusionSupports(const Tensor& adj, int64_t max_step,
                                      bool bidirectional) {
  CheckSquare(adj);
  const int64_t n = adj.size(0);
  std::vector<Tensor> supports;
  supports.push_back(Tensor::Eye(n));
  auto push_powers = [&](const Tensor& base) {
    Tensor walk = RandomWalkNormalize(base);
    Tensor power = walk.Clone();
    for (int64_t k = 0; k < max_step; ++k) {
      supports.push_back(power.Clone());
      if (k + 1 < max_step) power = power.Matmul(walk);
    }
  };
  push_powers(adj);
  if (bidirectional) push_powers(adj.Transpose(0, 1));
  return supports;
}

Tensor GaussianKernelGraph(const Tensor& distances, float threshold) {
  CheckSquare(distances);
  const int64_t n = distances.size(0);
  // sigma = std of all pairwise distances.
  const float mean = distances.MeanAll();
  Tensor centered = distances.AddScalar(-mean);
  const float var = centered.Mul(centered).MeanAll();
  const float sigma_sq = std::max(var, 1e-12f);
  Tensor out(Shape{n, n});
  const float* d = distances.data();
  float* p = out.mutable_data();
  for (int64_t i = 0; i < n * n; ++i) {
    const float w = std::exp(-(d[i] * d[i]) / sigma_sq);
    p[i] = w >= threshold ? w : 0.0f;
  }
  return out;
}

Tensor CorrelationGraph(const Tensor& series, float threshold) {
  TGCRN_CHECK_EQ(series.dim(), 2);
  const int64_t n = series.size(0);
  const int64_t t = series.size(1);
  TGCRN_CHECK_GT(t, 1);
  // Standardize each row.
  std::vector<double> means(n), stds(n);
  const float* s = series.data();
  for (int64_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < t; ++j) sum += s[i * t + j];
    means[i] = sum / t;
    double sq = 0.0;
    for (int64_t j = 0; j < t; ++j) {
      const double dv = s[i * t + j] - means[i];
      sq += dv * dv;
    }
    stds[i] = std::sqrt(sq / t);
  }
  Tensor out(Shape{n, n});
  float* p = out.mutable_data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double cov = 0.0;
      for (int64_t k = 0; k < t; ++k) {
        cov += (s[i * t + k] - means[i]) * (s[j * t + k] - means[j]);
      }
      cov /= t;
      const double denom = stds[i] * stds[j];
      const float r =
          denom > 1e-12 ? static_cast<float>(cov / denom) : 0.0f;
      const float w = std::fabs(r) >= threshold ? r : 0.0f;
      p[i * n + j] = w;
      p[j * n + i] = w;
    }
  }
  return out;
}

Tensor KnnSparsify(const Tensor& adj, int64_t k) {
  CheckSquare(adj);
  const int64_t n = adj.size(0);
  TGCRN_CHECK_GE(k, 0);
  Tensor out = Tensor::Zeros({n, n});
  const float* p = adj.data();
  float* q = out.mutable_data();
  std::vector<int64_t> order(n);
  for (int64_t i = 0; i < n; ++i) {
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(),
                      order.begin() + std::min(k, n), order.end(),
                      [&](int64_t a, int64_t b) {
                        return p[i * n + a] > p[i * n + b];
                      });
    for (int64_t j = 0; j < std::min(k, n); ++j) {
      q[i * n + order[j]] = p[i * n + order[j]];
    }
  }
  return out;
}

bool IsRowStochastic(const Tensor& adj, float atol) {
  CheckSquare(adj);
  const int64_t n = adj.size(0);
  const float* p = adj.data();
  for (int64_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (p[i * n + j] < -atol) return false;
      row += p[i * n + j];
    }
    if (std::fabs(row - 1.0) > atol && std::fabs(row) > atol) return false;
  }
  return true;
}

}  // namespace graph
}  // namespace tgcrn
