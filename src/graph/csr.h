// Copyright 2026 TGCRN Reproduction Authors
// Compressed-sparse-row storage for the learned time-aware graphs and the
// deterministic dense -> top-k -> CSR sparsify kernel that produces it.
//
// Batch-of-slots layout. A learned adjacency is a batch of row-stochastic
// [rows, cols] matrices that all share one sparsity *budget*: top-k keeps
// exactly min(k, cols) entries per row, so every batch item has the same
// row_offsets (rows + 1 entries, shared) while column ids and values are
// per-item, stored slot-major: slot s of batch item b lives at
// col_ids[b * nnz + s] / values flat index b * nnz + s. Values travel as a
// dense [batch, nnz] Tensor so the autograd layer (autograd/sparse_ops.h)
// treats them like any other activation.
//
// Determinism contract. Top-k selection ranks entries by (value descending,
// column index ascending) — a strict total order, so the kept set is unique
// regardless of selection algorithm, thread count, or ISA. Kept columns are
// then sorted ascending, fixing the slot order (and hence every downstream
// accumulation order) as a function of the input alone. Renormalization
// divides each kept value by the row's kept sum in ascending-slot order:
// applied to a row-softmax adjacency this is exactly the softmax
// renormalized over the kept entries.
#ifndef TGCRN_GRAPH_CSR_H_
#define TGCRN_GRAPH_CSR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace tgcrn {
namespace graph {

// The structure (index) half of a batch of CSR matrices. Values live
// separately (CsrBatch / ag::SparseGraph) so one immutable index can be
// shared by the forward value tensor and every gradient pass.
struct CsrIndex {
  int64_t batch = 0;
  int64_t rows = 0;
  int64_t cols = 0;
  // Shared row pointer: slot range of row r is
  // [row_offsets[r], row_offsets[r + 1]) in every batch item.
  std::vector<int64_t> row_offsets;  // rows + 1
  // Row of each slot (the inverse of row_offsets), shared across the batch.
  std::vector<int64_t> slot_rows;  // nnz
  // Column id of each slot, ascending within a row. Slot-major per item.
  std::vector<int64_t> col_ids;  // batch * nnz
  // Transpose (CSC) view for the backward kernel, built by
  // BuildTranspose(): for batch item b, the incoming slots of column c are
  // t_slots[b * nnz + t_offsets[b * (cols + 1) + c] ...). t_slots holds
  // item-local slot ids ordered by (column, then slot ascending) — a
  // deterministic counting sort of col_ids, so transpose accumulation
  // order is also a pure function of the structure.
  std::vector<int64_t> t_offsets;  // batch * (cols + 1)
  std::vector<int64_t> t_slots;    // batch * nnz

  // Slots per batch item.
  int64_t nnz() const { return row_offsets.empty() ? 0 : row_offsets.back(); }
  bool has_transpose() const { return !t_offsets.empty(); }

  // Builds the transpose lists (idempotent). Deterministic counting sort,
  // parallel over batch items.
  void BuildTranspose();

  // Internal consistency checks (shapes, sortedness); aborts on violation.
  void Validate() const;
};

// One batch of CSR matrices: immutable structure + dense value tensor.
struct CsrBatch {
  std::shared_ptr<CsrIndex> index;
  Tensor values;  // [batch, nnz], slot-major

  bool defined() const { return index != nullptr; }
};

// Writes the column ids of the k largest entries of `row` (length n) into
// out[0..k), ranked by (value descending, index ascending) and then sorted
// ascending by index. `scratch` must hold at least n int64s. The selection
// is a pure function of the row contents (see file header), so it is
// bitwise-reproducible across thread counts and ISAs.
void TopKRow(const float* row, int64_t n, int64_t k, int64_t* out,
             int64_t* scratch);

// Sparsifies a dense batch of row-distributions [B, N, N] (or one [N, N]
// matrix, treated as batch 1) to top-k CSR form, renormalizing each row's
// kept values to sum to 1 (uniform 1/k for all-zero rows). k is clamped to
// [1, N]. The kernel parallelizes over fixed row chunks; results are
// bitwise identical at any thread count.
CsrBatch SparsifyTopK(const Tensor& dense, int64_t k);

// Densifies a CsrBatch back to [batch, rows, cols] (zeros where dropped).
// Test/diagnostic utility.
Tensor CsrToDense(const CsrBatch& batch);

}  // namespace graph
}  // namespace tgcrn

#endif  // TGCRN_GRAPH_CSR_H_
