// Copyright 2026 TGCRN Reproduction Authors
// Graph-structure utilities shared by the pre-defined-graph baselines
// (DCRNN, PVCGN) and analysis code: adjacency normalizations, diffusion
// supports, and graph construction from distances / similarities.
#ifndef TGCRN_GRAPH_GRAPH_OPS_H_
#define TGCRN_GRAPH_GRAPH_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace tgcrn {
namespace graph {

// Row-normalizes A into a random-walk transition matrix D^-1 A.
// Rows that sum to zero are left as zero.
Tensor RandomWalkNormalize(const Tensor& adj);

// Symmetric normalization D^-1/2 A D^-1/2 (with self-loops optionally
// added first), as in Kipf & Welling GCN / Eq (10)'s L_sym.
Tensor SymmetricNormalize(const Tensor& adj, bool add_self_loops = true);

// Builds the k-step diffusion supports [I, P, P^2, ..., P^k] where
// P = D^-1 A, used by DCRNN's diffusion convolution. The reverse-direction
// supports use A^T.
std::vector<Tensor> DiffusionSupports(const Tensor& adj, int64_t max_step,
                                      bool bidirectional);

// Thresholded Gaussian kernel graph from pairwise distances (the standard
// construction for DCRNN's pre-defined sensor graph):
// A_ij = exp(-d_ij^2 / sigma^2) if below that exceeds `threshold`, else 0.
// sigma is the standard deviation of all distances.
Tensor GaussianKernelGraph(const Tensor& distances, float threshold);

// Pearson-correlation graph between the rows of `series` ([N, T]); entries
// below `threshold` (absolute value) are zeroed. Diagonal is zero.
Tensor CorrelationGraph(const Tensor& series, float threshold);

// k-nearest-neighbour binarization: keeps the k largest entries per row.
Tensor KnnSparsify(const Tensor& adj, int64_t k);

// True if every row sums to ~1 (or exactly 0 for isolated rows).
bool IsRowStochastic(const Tensor& adj, float atol = 1e-4f);

}  // namespace graph
}  // namespace tgcrn

#endif  // TGCRN_GRAPH_GRAPH_OPS_H_
