// Copyright 2026 TGCRN Reproduction Authors
#include "graph/csr.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/prof.h"
#include "obs/trace.h"

namespace tgcrn {
namespace graph {
namespace {

// Elements scanned per ParallelFor chunk in the sparsify/transpose passes.
// Grain only moves chunk boundaries; per-row work is serial either way, so
// it never affects results.
constexpr int64_t kSparsifyGrainElems = 16384;

}  // namespace

void CsrIndex::Validate() const {
  TGCRN_CHECK_GT(batch, 0);
  TGCRN_CHECK_GT(rows, 0);
  TGCRN_CHECK_GT(cols, 0);
  TGCRN_CHECK_EQ(static_cast<int64_t>(row_offsets.size()), rows + 1);
  TGCRN_CHECK_EQ(row_offsets.front(), 0);
  const int64_t n = nnz();
  TGCRN_CHECK_EQ(static_cast<int64_t>(slot_rows.size()), n);
  TGCRN_CHECK_EQ(static_cast<int64_t>(col_ids.size()), batch * n);
  for (int64_t r = 0; r < rows; ++r) {
    TGCRN_CHECK_LE(row_offsets[r], row_offsets[r + 1]);
  }
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t* ids = col_ids.data() + b * n;
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t s = row_offsets[r]; s < row_offsets[r + 1]; ++s) {
        TGCRN_CHECK_GE(ids[s], 0);
        TGCRN_CHECK_LT(ids[s], cols);
        if (s > row_offsets[r]) {
          TGCRN_CHECK_LT(ids[s - 1], ids[s]) << "col ids not ascending";
        }
      }
    }
  }
}

void CsrIndex::BuildTranspose() {
  if (has_transpose()) return;
  const int64_t n = nnz();
  t_offsets.assign(batch * (cols + 1), 0);
  t_slots.resize(batch * n);
  // Counting sort of each item's slots by column. Slots are visited in
  // ascending order within each bucket, so the transpose adjacency lists
  // are ordered by (column, slot) — a pure function of the structure.
  common::ParallelFor(0, batch, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const int64_t* ids = col_ids.data() + b * n;
      int64_t* offs = t_offsets.data() + b * (cols + 1);
      int64_t* out = t_slots.data() + b * n;
      for (int64_t s = 0; s < n; ++s) ++offs[ids[s] + 1];
      for (int64_t c = 0; c < cols; ++c) offs[c + 1] += offs[c];
      std::vector<int64_t> cursor(offs, offs + cols);
      for (int64_t s = 0; s < n; ++s) out[cursor[ids[s]]++] = s;
    }
  });
}

void TopKRow(const float* row, int64_t n, int64_t k, int64_t* out,
             int64_t* scratch) {
  std::iota(scratch, scratch + n, int64_t{0});
  // (value desc, index asc) is a strict total order: the top-k *set* is
  // unique no matter how nth_element partitions equal-valued runs.
  const auto better = [row](int64_t a, int64_t b) {
    if (row[a] != row[b]) return row[a] > row[b];
    return a < b;
  };
  if (k < n) {
    std::nth_element(scratch, scratch + k - 1, scratch + n, better);
  }
  std::copy(scratch, scratch + k, out);
  std::sort(out, out + k);  // ascending column order fixes the slot layout
}

CsrBatch SparsifyTopK(const Tensor& dense, int64_t k) {
  TGCRN_TRACE_SCOPE("graph.SparsifyTopK");
  TGCRN_CHECK(dense.dim() == 2 || dense.dim() == 3)
      << "SparsifyTopK expects [B, N, N] or [N, N]";
  const int64_t batch = dense.dim() == 3 ? dense.size(0) : 1;
  const int64_t rows = dense.size(dense.dim() - 2);
  const int64_t cols = dense.size(dense.dim() - 1);
  const int64_t kept = std::min<int64_t>(std::max<int64_t>(k, 1), cols);

  // Shape-only analytic cost (identical at every ISA and thread count):
  // selection scans each row once, renormalization touches kept slots.
  obs::RecordKernelCost(
      "graph.SparsifyTopK",
      static_cast<double>(dense.numel()) +
          2.0 * static_cast<double>(batch) * static_cast<double>(rows) *
              static_cast<double>(kept),
      4.0 * (static_cast<double>(dense.numel()) +
             3.0 * static_cast<double>(batch) * static_cast<double>(rows) *
                 static_cast<double>(kept)));

  CsrBatch out;
  out.index = std::make_shared<CsrIndex>();
  CsrIndex& index = *out.index;
  index.batch = batch;
  index.rows = rows;
  index.cols = cols;
  index.row_offsets.resize(rows + 1);
  for (int64_t r = 0; r <= rows; ++r) index.row_offsets[r] = r * kept;
  const int64_t nnz = rows * kept;
  index.slot_rows.resize(nnz);
  for (int64_t s = 0; s < nnz; ++s) index.slot_rows[s] = s / kept;
  index.col_ids.resize(batch * nnz);
  out.values = Tensor::ForOverwrite({batch, nnz});

  const float* src = dense.data();
  float* vals = out.values.mutable_data();
  int64_t* ids = index.col_ids.data();
  const int64_t total_rows = batch * rows;
  const int64_t grain =
      std::max<int64_t>(1, kSparsifyGrainElems / std::max<int64_t>(1, cols));
  common::ParallelFor(0, total_rows, grain, [&](int64_t r0, int64_t r1) {
    std::vector<int64_t> scratch(cols);
    for (int64_t br = r0; br < r1; ++br) {
      const float* row = src + br * cols;
      int64_t* row_ids = ids + br * kept;
      float* row_vals = vals + br * kept;
      TopKRow(row, cols, kept, row_ids, scratch.data());
      float sum = 0.0f;
      for (int64_t s = 0; s < kept; ++s) {
        row_vals[s] = row[row_ids[s]];
        sum += row_vals[s];
      }
      if (sum > 0.0f) {
        const float inv = 1.0f / sum;
        for (int64_t s = 0; s < kept; ++s) row_vals[s] *= inv;
      } else {
        // All-zero row (e.g. a fully relu-clipped row before softmax ever
        // ran): fall back to the uniform distribution over the kept set so
        // the result stays row-stochastic.
        const float uniform = 1.0f / static_cast<float>(kept);
        for (int64_t s = 0; s < kept; ++s) row_vals[s] = uniform;
      }
    }
  });
  return out;
}

Tensor CsrToDense(const CsrBatch& batch) {
  TGCRN_CHECK(batch.defined());
  const CsrIndex& index = *batch.index;
  const int64_t nnz = index.nnz();
  Tensor dense = Tensor::Zeros({index.batch, index.rows, index.cols});
  float* out = dense.mutable_data();
  const float* vals = batch.values.data();
  for (int64_t b = 0; b < index.batch; ++b) {
    const int64_t* ids = index.col_ids.data() + b * nnz;
    float* mat = out + b * index.rows * index.cols;
    for (int64_t s = 0; s < nnz; ++s) {
      mat[index.slot_rows[s] * index.cols + ids[s]] = vals[b * nnz + s];
    }
  }
  return dense;
}

}  // namespace graph
}  // namespace tgcrn
