// Copyright 2026 TGCRN Reproduction Authors
#include "datagen/demand_sim.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace tgcrn {
namespace datagen {
namespace {

double Bump(double hour, double center, double width) {
  const double z = (hour - center) / width;
  return std::exp(-0.5 * z * z);
}

}  // namespace

double DemandProfile(ZoneType type, double hour, bool weekend) {
  const double morning = Bump(hour, 8.5, 1.3);
  const double evening = Bump(hour, 18.0, 1.5);
  const double midday = Bump(hour, 13.0, 2.5);
  const double night = Bump(hour, 22.0, 1.8);
  const double base = 0.08;
  switch (type) {
    case ZoneType::kResidentialZone:
      return weekend ? base + 0.5 * midday + 0.35 * night
                     : base + 1.2 * morning + 0.6 * evening;
    case ZoneType::kCommercial:
      return weekend ? base + 0.25 * midday
                     : base + 0.8 * morning + 1.1 * evening + 0.5 * midday;
    case ZoneType::kEntertainment:
      return weekend ? base + 0.8 * midday + 1.4 * night
                     : base + 0.3 * midday + 0.9 * night;
    case ZoneType::kTransitHub:
      return weekend ? base + 0.4 * midday + 0.4 * night
                     : base + 1.3 * morning + 1.3 * evening + 0.3 * midday;
  }
  return base;
}

DemandSimOutput SimulateDemand(const DemandSimConfig& config) {
  TGCRN_CHECK_GE(config.num_zones, 4);
  TGCRN_CHECK_GE(config.num_days, 7);
  Rng rng(config.seed);
  const int64_t n = config.num_zones;
  const int64_t spd = config.steps_per_day;
  const int64_t total = config.num_days * spd;

  DemandSimOutput out;
  out.zone_types.resize(n);
  out.communities.resize(n);
  std::vector<float> xs(n), ys(n), sizes(n);
  for (int64_t i = 0; i < n; ++i) {
    out.communities[i] = rng.UniformInt(0, config.num_communities - 1);
    // Cluster zones of a community spatially.
    const float cx = 2.5f + 5.0f * (out.communities[i] % 2);
    const float cy = 2.5f + 5.0f * (out.communities[i] / 2 % 2);
    xs[i] = cx + static_cast<float>(rng.Gaussian(0.0, 1.4));
    ys[i] = cy + static_cast<float>(rng.Gaussian(0.0, 1.4));
    sizes[i] = std::exp(static_cast<float>(rng.Gaussian(0.0, 0.4)));
    out.zone_types[i] = static_cast<ZoneType>(rng.UniformInt(0, 3));
  }
  out.distances = Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const float dx = xs[i] - xs[j];
      const float dy = ys[i] - ys[j];
      out.distances.set_flat(i * n + j, std::sqrt(dx * dx + dy * dy));
    }
  }

  // Trip destination mixing matrix: trips from zone i land in zone j with
  // probability ~ size_j * exp(-dist/4); rows normalized.
  Tensor mix = Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double w =
          sizes[j] * std::exp(-out.distances.flat(i * n + j) / 4.0);
      mix.set_flat(i * n + j, static_cast<float>(w));
      row += w;
    }
    for (int64_t j = 0; j < n; ++j) {
      mix.set_flat(i * n + j,
                   static_cast<float>(mix.flat(i * n + j) / row));
    }
  }

  // Calibration: average profile value -> scale factor.
  double profile_sum = 0.0;
  for (int64_t t = 0; t < total; ++t) {
    const int64_t slot = t % spd;
    const double hour = 24.0 * static_cast<double>(slot) / spd;
    const bool weekend = ((t / spd) % 7) >= 5;
    for (int64_t i = 0; i < n; ++i) {
      profile_sum += sizes[i] * DemandProfile(out.zone_types[i], hour,
                                              weekend);
    }
  }
  const double scale =
      config.target_mean_demand / std::max(profile_sum / (total * n), 1e-9);

  out.data.values = Tensor::Zeros({total, n, 2});
  out.data.slot_of_day.resize(total);
  out.data.day_of_week.resize(total);
  out.data.steps_per_day = spd;
  float* values = out.data.values.mutable_data();

  std::vector<double> community_factor(config.num_communities, 0.0);
  std::vector<double> day_scale(n, 1.0);
  const int64_t lag = 1;  // 30-minute average trip duration

  for (int64_t t = 0; t < total; ++t) {
    const int64_t slot = t % spd;
    const double hour = 24.0 * static_cast<double>(slot) / spd;
    const int64_t dow = (t / spd) % 7;
    const bool weekend = dow >= 5;
    out.data.slot_of_day[t] = slot;
    out.data.day_of_week[t] = dow;
    if (slot == 0) {
      for (int64_t i = 0; i < n; ++i) {
        day_scale[i] = std::exp(rng.Gaussian(0.0, config.day_noise_sigma));
      }
    }
    for (int64_t c = 0; c < config.num_communities; ++c) {
      community_factor[c] =
          config.community_persistence * community_factor[c] +
          rng.Gaussian(0.0, config.community_noise_sigma);
    }
    for (int64_t i = 0; i < n; ++i) {
      const double lambda =
          scale * sizes[i] * DemandProfile(out.zone_types[i], hour, weekend) *
          day_scale[i] *
          std::exp(community_factor[out.communities[i]]);
      const int64_t pickups = rng.Poisson(lambda);
      values[(t * n + i) * 2 + 0] = static_cast<float>(pickups);
      if (pickups > 0 && t + lag < total) {
        // Spread the resulting drop-offs over destination zones.
        for (int64_t j = 0; j < n; ++j) {
          const float share = mix.flat(i * n + j);
          if (share <= 0.0f) continue;
          const int64_t dropoffs = rng.Poisson(pickups * share);
          values[((t + lag) * n + j) * 2 + 1] +=
              static_cast<float>(dropoffs);
        }
      }
    }
  }
  return out;
}

}  // namespace datagen
}  // namespace tgcrn
