// Copyright 2026 TGCRN Reproduction Authors
// Urban mobility demand simulator: the stand-in for the NYC-Bike and
// NYC-Taxi trip-record datasets. Generates two-channel (pick-up, drop-off)
// demand per zone at 30-minute resolution with:
//  * zone-type daily profiles (residential / commercial / entertainment /
//    transit hub) that differ between weekdays and weekends,
//  * community-level multiplicative factors evolving as AR(1) processes,
//    which induce the spatial correlation structure graph learners exploit,
//  * drop-off demand coupled to the pick-ups of correlated zones with a
//    travel-time lag, mirroring how trips physically move demand around.
#ifndef TGCRN_DATAGEN_DEMAND_SIM_H_
#define TGCRN_DATAGEN_DEMAND_SIM_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace datagen {

enum class ZoneType { kResidentialZone = 0, kCommercial = 1,
                      kEntertainment = 2, kTransitHub = 3 };

struct DemandSimConfig {
  int64_t num_zones = 24;
  int64_t num_days = 56;       // starts on a Monday
  int64_t steps_per_day = 48;  // 30-min slots, full day
  uint64_t seed = 7;
  int64_t num_communities = 4;
  // Mean pick-ups per zone-slot after calibration (NYC-Bike ~ a few, taxi
  // an order of magnitude more).
  double target_mean_demand = 6.0;
  // Community-level AR(1) demand factor: persistence and innovation scale.
  // High persistence means the factor is still present at the end of a
  // 6-hour forecast horizon - the predictable-from-observations component
  // that separates state-tracking models from seasonal means.
  double community_persistence = 0.97;
  double community_noise_sigma = 0.10;
  // Per-zone day-level multiplicative noise (weather, events): constant
  // within a day, so models can infer it from the morning and exploit it
  // all day, while HA averages over it.
  double day_noise_sigma = 0.25;
};

struct DemandSimOutput {
  data::SpatioTemporalData data;  // [T, N, 2]: pick-up, drop-off
  Tensor distances;               // [N, N]
  std::vector<ZoneType> zone_types;
  std::vector<int64_t> communities;  // community id per zone
};

DemandSimOutput SimulateDemand(const DemandSimConfig& config);

// Daily demand profile for a zone type (exposed for tests).
double DemandProfile(ZoneType type, double hour, bool weekend);

}  // namespace datagen
}  // namespace tgcrn

#endif  // TGCRN_DATAGEN_DEMAND_SIM_H_
