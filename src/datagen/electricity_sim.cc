// Copyright 2026 TGCRN Reproduction Authors
#include "datagen/electricity_sim.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace tgcrn {
namespace datagen {
namespace {

double Bump(double hour, double center, double width) {
  const double z = (hour - center) / width;
  return std::exp(-0.5 * z * z);
}

}  // namespace

double LoadProfile(ClientClass cls, double hour, bool weekend) {
  switch (cls) {
    case ClientClass::kHousehold: {
      const double morning = Bump(hour, 7.5, 1.2);
      const double evening = Bump(hour, 20.0, 2.2);
      return weekend ? 0.45 + 0.5 * Bump(hour, 12.0, 4.0) + 0.6 * evening
                     : 0.35 + 0.6 * morning + 0.9 * evening;
    }
    case ClientClass::kOffice: {
      const double workday = Bump(hour, 13.0, 3.5);
      return weekend ? 0.25 + 0.1 * workday : 0.3 + 1.2 * workday;
    }
    case ClientClass::kFactory:
      // Two-shift operation: high, flat load on workdays.
      return weekend ? 0.5 : 0.6 + 0.7 * Bump(hour, 12.0, 6.5);
  }
  return 0.3;
}

ElectricitySimOutput SimulateElectricity(const ElectricitySimConfig& config) {
  TGCRN_CHECK_GE(config.num_clients, 2);
  Rng rng(config.seed);
  const int64_t n = config.num_clients;
  const int64_t spd = config.steps_per_day;
  const int64_t total = config.num_days * spd;

  ElectricitySimOutput out;
  out.classes.resize(n);
  std::vector<double> base(n), weather_sensitivity(n);
  for (int64_t i = 0; i < n; ++i) {
    out.classes[i] = static_cast<ClientClass>(rng.UniformInt(0, 2));
    base[i] = std::exp(rng.Gaussian(3.0, 0.6));  // kWh scale, heavy tailed
    weather_sensitivity[i] = 0.3 + 0.7 * rng.NextDouble();
  }

  out.data.values = Tensor::Zeros({total, n, 1});
  out.data.slot_of_day.resize(total);
  out.data.day_of_week.resize(total);
  out.data.steps_per_day = spd;
  out.weather.resize(total);
  float* values = out.data.values.mutable_data();

  // Weather: slow AR(1) (persists across days) + diurnal cycle.
  double weather_state = 0.0;
  for (int64_t t = 0; t < total; ++t) {
    const int64_t slot = t % spd;
    const double hour = 24.0 * static_cast<double>(slot) / spd;
    const int64_t dow = (t / spd) % 7;
    const bool weekend = dow >= 5;
    out.data.slot_of_day[t] = slot;
    out.data.day_of_week[t] = dow;
    weather_state =
        0.995 * weather_state + rng.Gaussian(0.0, config.weather_sigma);
    const double weather =
        weather_state + 0.3 * Bump(hour, 15.0, 4.0);  // afternoon heat
    out.weather[t] = weather;
    for (int64_t i = 0; i < n; ++i) {
      const double load =
          base[i] * LoadProfile(out.classes[i], hour, weekend) *
          std::exp(weather_sensitivity[i] * weather) *
          std::exp(rng.Gaussian(0.0, 0.05));
      values[t * n + i] = static_cast<float>(load);
    }
  }
  return out;
}

}  // namespace datagen
}  // namespace tgcrn
