// Copyright 2026 TGCRN Reproduction Authors
// Metro-system simulator: the stand-in for the proprietary HZMetro/SHMetro
// AFC transaction datasets. It generates passenger Origin-Destination flows
// whose spatial correlations exhibit exactly the phenomena the paper builds
// on (Section II-B, Figs 1-2):
//
//  * Spatial trend    - OD intensities ramp up and down smoothly within a
//                       day (morning commute residential->business, evening
//                       reverse, leisure flows toward shopping areas).
//  * Spatial periodicity - weekday and weekend days follow distinct OD
//                       patterns (commuting collapses on weekends, leisure
//                       flows grow), and the pattern recurs every week.
//
// Because the generator is explicit about the time-varying OD intensity
// matrix Lambda(t), the *ground-truth dynamic graph* is available - so the
// paper's qualitative Fig 11 comparison (learned adjacency vs OD transfer)
// becomes a quantitative experiment here.
#ifndef TGCRN_DATAGEN_METRO_SIM_H_
#define TGCRN_DATAGEN_METRO_SIM_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace datagen {

// Functional area of a station, driving its origin/attraction profiles.
enum class AreaType { kResidential = 0, kBusiness = 1, kShopping = 2,
                      kMixed = 3 };

struct MetroSimConfig {
  int64_t num_stations = 20;
  int64_t num_days = 28;       // starts on a Monday
  int64_t steps_per_day = 72;  // 15-min slots covering 06:00-24:00
  uint64_t seed = 1;
  // Mean tap-in count per station-slot after calibration; HZMetro averages
  // roughly 400, scaled down a little to keep Poisson sampling cheap.
  double target_mean_inflow = 320.0;
  // Day-to-day multiplicative noise (lognormal sigma) and within-day AR(1)
  // noise scale; raise for harder datasets.
  double day_noise_sigma = 0.18;
  double ar_noise_sigma = 0.15;
  // Strength of the pair-specific diurnal phase term: each OD pair's
  // intensity is modulated by (1 + s * sin(2*pi*hour/24 + phi_ij)) with a
  // pair-dependent phase phi_ij. This makes the time variation of the
  // correlation *non-separable* across node pairs - individual edges have
  // their own trends, the phenomenon TagSL is designed to capture (a purely
  // separable o_i(t) * a_j(t) structure could be explained by node states
  // alone).
  double pair_phase_strength = 0.35;
  // Whether to retain the per-step expected OD matrices (ground truth).
  bool keep_od_ground_truth = true;
  // Neighbor-limited OD mode for city-scale N (the sparse scale-out path):
  // > 0 restricts each origin to its top-m destinations by gravity
  // (value-descending, index-ascending tie-breaks, self excluded), so
  // generation runs in O(T*N*m) time and O(N*m) memory instead of
  // O(T*N^2) / O(N^2). The dense `distances` matrix and gravity tensor are
  // not materialized (distances is left undefined) and
  // keep_od_ground_truth must be false. 0 = dense, all pairs.
  int64_t max_od_pairs_per_station = 0;
  // Failure injection: expected number of station-closure events over the
  // whole horizon (0 disables). A closure zeroes one station's flows for
  // 2-8 hours - the missing-data pattern real AFC feeds exhibit - so
  // downstream code must rely on masked losses / null-aware metrics.
  double expected_closures = 0.0;
};

struct MetroSimOutput {
  // Inflow/outflow counts per station: values [T, N, 2].
  data::SpatioTemporalData data;
  // Station pairwise distances [N, N] (for pre-defined graph baselines).
  // Undefined in neighbor-limited mode (max_od_pairs_per_station > 0).
  Tensor distances;
  // Neighbor-limited mode only: each origin's kept destinations, ascending
  // station ids, at most max_od_pairs_per_station each. Empty in dense mode.
  std::vector<std::vector<int64_t>> od_neighbors;
  // Per-station functional area labels.
  std::vector<AreaType> area_types;
  // Expected OD intensity matrices Lambda(t), [T] entries of [N, N];
  // empty when keep_od_ground_truth is false.
  std::vector<Tensor> od_ground_truth;
  // Injected closures as (station, first_step, last_step) triples.
  struct Closure {
    int64_t station;
    int64_t first_step;
    int64_t last_step;  // inclusive
  };
  std::vector<Closure> closures;
};

// Runs the simulator. Deterministic for a fixed config.
MetroSimOutput SimulateMetro(const MetroSimConfig& config);

// Origin intensity profile of an area type at `hour` (0-24) on a weekday or
// weekend day. Exposed for tests and for the Fig 2 analysis bench.
double MetroOriginProfile(AreaType type, double hour, bool weekend);
// Attraction (destination) profile, symmetric role.
double MetroAttractionProfile(AreaType type, double hour, bool weekend);

}  // namespace datagen
}  // namespace tgcrn

#endif  // TGCRN_DATAGEN_METRO_SIM_H_
