// Copyright 2026 TGCRN Reproduction Authors
// Electricity-consumption simulator: the stand-in for the UCI
// ElectricityLoadDiagrams dataset (Table VI). Hourly per-client consumption
// built from a base load, client-class daily/weekly shapes, and a shared
// weather process (heating/cooling demand) that correlates clients - the
// latent spatial structure for graph learners to discover.
#ifndef TGCRN_DATAGEN_ELECTRICITY_SIM_H_
#define TGCRN_DATAGEN_ELECTRICITY_SIM_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace tgcrn {
namespace datagen {

enum class ClientClass { kHousehold = 0, kOffice = 1, kFactory = 2 };

struct ElectricitySimConfig {
  int64_t num_clients = 32;
  int64_t num_days = 120;      // starts on a Monday
  int64_t steps_per_day = 24;  // hourly
  uint64_t seed = 21;
  double weather_sigma = 0.12;
};

struct ElectricitySimOutput {
  data::SpatioTemporalData data;  // [T, N, 1] consumption in kWh
  std::vector<ClientClass> classes;
  std::vector<double> weather;  // shared weather factor per step
};

ElectricitySimOutput SimulateElectricity(const ElectricitySimConfig& config);

// Hourly load shape for a client class (exposed for tests).
double LoadProfile(ClientClass cls, double hour, bool weekend);

}  // namespace datagen
}  // namespace tgcrn

#endif  // TGCRN_DATAGEN_ELECTRICITY_SIM_H_
