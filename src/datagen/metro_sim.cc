// Copyright 2026 TGCRN Reproduction Authors
#include "datagen/metro_sim.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/csr.h"

namespace tgcrn {
namespace datagen {
namespace {

// Smooth bump centered at `center` hours with the given width (hours).
double Bump(double hour, double center, double width) {
  const double z = (hour - center) / width;
  return std::exp(-0.5 * z * z);
}

// Travel delay between stations in slots, proportional to distance.
int64_t TravelDelaySlots(float distance) {
  return 1 + static_cast<int64_t>(distance / 4.0f);
}

// Deterministic per-pair phase in [0, 2*pi) from the pair index.
double PairPhase(int64_t i, int64_t j, int64_t n) {
  const uint64_t key = static_cast<uint64_t>(i * n + j);
  uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return 2.0 * M_PI *
         static_cast<double>(z >> 11) /
         static_cast<double>(1ULL << 53);
}

// The edge-level diurnal modulation described in MetroSimConfig.
double PairModulation(double hour, double strength, double phase) {
  return 1.0 + strength * std::sin(2.0 * M_PI * hour / 24.0 + phase);
}

}  // namespace

double MetroOriginProfile(AreaType type, double hour, bool weekend) {
  const double morning = Bump(hour, 8.0, 1.0);    // commute out of home
  const double evening = Bump(hour, 18.0, 1.2);   // commute out of work
  const double midday = Bump(hour, 13.0, 2.5);
  const double leisure = Bump(hour, 20.0, 1.5);
  const double base = 0.12;
  switch (type) {
    case AreaType::kResidential:
      return weekend ? base + 0.55 * midday + 0.45 * leisure
                     : base + 1.6 * morning + 0.35 * leisure;
    case AreaType::kBusiness:
      return weekend ? base + 0.15 * midday
                     : base + 1.5 * evening + 0.25 * midday;
    case AreaType::kShopping:
      return weekend ? base + 0.9 * midday + 1.0 * leisure
                     : base + 0.5 * midday + 0.6 * leisure;
    case AreaType::kMixed:
      return 0.5 * (MetroOriginProfile(AreaType::kResidential, hour, weekend) +
                    MetroOriginProfile(AreaType::kBusiness, hour, weekend));
  }
  return base;
}

double MetroAttractionProfile(AreaType type, double hour, bool weekend) {
  const double morning = Bump(hour, 8.25, 1.0);   // arrive at work
  const double evening = Bump(hour, 18.25, 1.2);  // arrive home
  const double midday = Bump(hour, 13.0, 2.5);
  const double leisure = Bump(hour, 20.0, 1.5);
  const double base = 0.12;
  switch (type) {
    case AreaType::kResidential:
      return weekend ? base + 0.4 * midday + 0.7 * leisure
                     : base + 1.6 * evening + 0.25 * leisure;
    case AreaType::kBusiness:
      return weekend ? base + 0.15 * midday
                     : base + 1.5 * morning + 0.25 * midday;
    case AreaType::kShopping:
      return weekend ? base + 0.9 * midday + 1.0 * leisure
                     : base + 0.5 * midday + 0.6 * leisure;
    case AreaType::kMixed:
      return 0.5 *
             (MetroAttractionProfile(AreaType::kResidential, hour, weekend) +
              MetroAttractionProfile(AreaType::kBusiness, hour, weekend));
  }
  return base;
}

namespace {

// The neighbor-limited generation path (max_od_pairs_per_station > 0):
// identical phenomenology restricted to each origin's top-m gravity
// destinations, O(T*N*m) time and O(N*m) memory. The station layout (and
// the RNG draws that produce it) is shared with the dense path; all later
// draws follow the kept-pair order (origin ascending, destination
// ascending within an origin), so output is deterministic for a config.
void SimulateNeighborLimited(const MetroSimConfig& config, Rng* rng,
                             const std::vector<float>& xs,
                             const std::vector<float>& ys,
                             const std::vector<float>& sizes,
                             MetroSimOutput* out) {
  TGCRN_CHECK(!config.keep_od_ground_truth)
      << "neighbor-limited metro_sim does not materialize OD ground truth";
  const int64_t n = config.num_stations;
  const int64_t spd = config.steps_per_day;
  const int64_t total = config.num_days * spd;
  const int64_t m = std::min<int64_t>(config.max_od_pairs_per_station, n - 1);

  // --- Top-m destinations per origin, row by row (no [N, N] tensor) ---------
  std::vector<int64_t> nbr(n * m);
  std::vector<float> nbr_gravity(n * m);
  std::vector<int64_t> nbr_delay(n * m);
  const int64_t row_grain =
      std::max<int64_t>(1, int64_t{16384} / std::max<int64_t>(1, n));
  common::ParallelFor(0, n, row_grain, [&](int64_t i0, int64_t i1) {
    std::vector<float> row(n);
    std::vector<int64_t> scratch(n);
    for (int64_t i = i0; i < i1; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) {
          row[j] = -1.0f;  // self-pairs carry no flow; rank last
          continue;
        }
        const float dx = xs[i] - xs[j];
        const float dy = ys[i] - ys[j];
        const float dist = std::sqrt(dx * dx + dy * dy);
        row[j] = sizes[i] * sizes[j] * std::exp(-dist / 6.0f);
      }
      // Same deterministic (value desc, index asc) selection as the
      // learned-graph sparsifier; kept ids come out ascending.
      graph::TopKRow(row.data(), n, m, nbr.data() + i * m, scratch.data());
      for (int64_t s = 0; s < m; ++s) {
        const int64_t j = nbr[i * m + s];
        const float dx = xs[i] - xs[j];
        const float dy = ys[i] - ys[j];
        const float dist = std::sqrt(dx * dx + dy * dy);
        nbr_gravity[i * m + s] = row[j];
        nbr_delay[i * m + s] = TravelDelaySlots(dist);
      }
    }
  });
  out->od_neighbors.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    out->od_neighbors[i].assign(nbr.begin() + i * m,
                                nbr.begin() + (i + 1) * m);
  }

  // --- Calibration over the kept pairs (noiseless intensity mean) -----------
  const double intensity_sum = common::DeterministicChunkedSum(
      total, /*grain=*/8, [&](int64_t t0, int64_t t1) {
        double sum = 0.0;
        for (int64_t t = t0; t < t1; ++t) {
          const int64_t slot = t % spd;
          const double hour = 6.0 + 18.0 * static_cast<double>(slot) / spd;
          const bool weekend = ((t / spd) % 7) >= 5;
          for (int64_t i = 0; i < n; ++i) {
            const double oi =
                MetroOriginProfile(out->area_types[i], hour, weekend);
            for (int64_t s = 0; s < m; ++s) {
              const int64_t j = nbr[i * m + s];
              sum += nbr_gravity[i * m + s] * oi *
                     MetroAttractionProfile(out->area_types[j], hour,
                                            weekend) *
                     PairModulation(hour, config.pair_phase_strength,
                                    PairPhase(i, j, n));
            }
          }
        }
        return sum;
      });
  const double mean_inflow = intensity_sum / (total * n);
  const double scale =
      config.target_mean_inflow / std::max(mean_inflow, 1e-9);

  // --- Main simulation -------------------------------------------------------
  out->data.values = Tensor::Zeros({total, n, 2});
  out->data.slot_of_day.resize(total);
  out->data.day_of_week.resize(total);
  out->data.steps_per_day = spd;
  std::vector<double> day_scale(n, 1.0);
  std::vector<double> ar_state(n, 0.0);
  float* values = out->data.values.mutable_data();

  for (int64_t t = 0; t < total; ++t) {
    const int64_t slot = t % spd;
    const double hour = 6.0 + 18.0 * static_cast<double>(slot) / spd;
    const int64_t dow = (t / spd) % 7;
    const bool weekend = dow >= 5;
    out->data.slot_of_day[t] = slot;
    out->data.day_of_week[t] = dow;

    if (slot == 0) {
      for (int64_t i = 0; i < n; ++i) {
        day_scale[i] = std::exp(rng->Gaussian(0.0, config.day_noise_sigma));
        ar_state[i] = 0.0;
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      ar_state[i] =
          0.8 * ar_state[i] + rng->Gaussian(0.0, config.ar_noise_sigma);
    }

    for (int64_t i = 0; i < n; ++i) {
      const double oi = MetroOriginProfile(out->area_types[i], hour,
                                           weekend) *
                        day_scale[i] * std::exp(ar_state[i]);
      for (int64_t s = 0; s < m; ++s) {
        const int64_t j = nbr[i * m + s];
        const double lam =
            scale * nbr_gravity[i * m + s] * oi *
            MetroAttractionProfile(out->area_types[j], hour, weekend) *
            PairModulation(hour, config.pair_phase_strength,
                           PairPhase(i, j, n));
        const int64_t trips = rng->Poisson(lam);
        if (trips == 0) continue;
        values[(t * n + i) * 2 + 0] += static_cast<float>(trips);
        const int64_t arrive = t + nbr_delay[i * m + s];
        if (arrive < total) {
          values[(arrive * n + j) * 2 + 1] += static_cast<float>(trips);
        }
      }
    }
  }

  // --- Failure injection ------------------------------------------------------
  if (config.expected_closures > 0.0) {
    const int64_t events = rng->Poisson(config.expected_closures);
    for (int64_t e = 0; e < events; ++e) {
      const int64_t station = rng->UniformInt(0, n - 1);
      const int64_t duration = rng->UniformInt(8, 32);
      const int64_t first = rng->UniformInt(0, total - duration - 1);
      const int64_t last = first + duration;
      for (int64_t tt = first; tt <= last; ++tt) {
        values[(tt * n + station) * 2 + 0] = 0.0f;
        values[(tt * n + station) * 2 + 1] = 0.0f;
      }
      out->closures.push_back({station, first, last});
    }
  }
}

}  // namespace

MetroSimOutput SimulateMetro(const MetroSimConfig& config) {
  TGCRN_CHECK_GE(config.num_stations, 4);
  TGCRN_CHECK_GE(config.num_days, 7);
  Rng rng(config.seed);
  const int64_t n = config.num_stations;
  const int64_t spd = config.steps_per_day;
  const int64_t total = config.num_days * spd;

  MetroSimOutput out;

  // --- Static city layout ---------------------------------------------------
  // Coordinates in a 10x10 km box; area types cycle so every type exists.
  std::vector<float> xs(n), ys(n), sizes(n);
  out.area_types.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    xs[i] = rng.Uniform(0.0f, 10.0f);
    ys[i] = rng.Uniform(0.0f, 10.0f);
    sizes[i] = std::exp(static_cast<float>(rng.Gaussian(0.0, 0.35)));
    out.area_types[i] = static_cast<AreaType>(rng.UniformInt(0, 3));
  }
  if (config.max_od_pairs_per_station > 0) {
    // City-scale path: top-m gravity neighbors per origin, no dense [N, N]
    // matrices. Shares the layout draws above; see SimulateNeighborLimited.
    SimulateNeighborLimited(config, &rng, xs, ys, sizes, &out);
    return out;
  }
  out.distances = Tensor::Zeros({n, n});
  Tensor gravity = Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const float dx = xs[i] - xs[j];
      const float dy = ys[i] - ys[j];
      const float dist = std::sqrt(dx * dx + dy * dy);
      out.distances.set_flat(i * n + j, dist);
      // Gravity model: bigger stations attract more; nearby pairs interact
      // more. The mild distance decay keeps long-range structure alive.
      gravity.set_flat(i * n + j,
                       sizes[i] * sizes[j] * std::exp(-dist / 6.0f));
    }
  }

  // --- Calibration pass: mean expected inflow -> target ---------------------
  // Expected inflow_i(t) = sum_j Lambda_ij(t). Compute the grand mean of the
  // noiseless intensity to derive a single global scale factor.
  double intensity_sum = 0.0;
  for (int64_t t = 0; t < total; ++t) {
    const int64_t slot = t % spd;
    const double hour = 6.0 + 18.0 * static_cast<double>(slot) / spd;
    const int64_t dow = (t / spd) % 7;  // day 0 is a Monday
    const bool weekend = dow >= 5;
    double step_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double oi = MetroOriginProfile(out.area_types[i], hour, weekend);
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        step_sum += gravity.flat(i * n + j) * oi *
                    MetroAttractionProfile(out.area_types[j], hour,
                                           weekend) *
                    PairModulation(hour, config.pair_phase_strength,
                                   PairPhase(i, j, n));
      }
    }
    intensity_sum += step_sum;
  }
  const double mean_inflow = intensity_sum / (total * n);
  const double scale = config.target_mean_inflow / std::max(mean_inflow, 1e-9);

  // --- Main simulation -------------------------------------------------------
  out.data.values = Tensor::Zeros({total, n, 2});
  out.data.slot_of_day.resize(total);
  out.data.day_of_week.resize(total);
  out.data.steps_per_day = spd;
  if (config.keep_od_ground_truth) out.od_ground_truth.reserve(total);

  // Station-level noise: per-day lognormal scale and within-day AR(1).
  std::vector<double> day_scale(n, 1.0);
  std::vector<double> ar_state(n, 0.0);

  float* values = out.data.values.mutable_data();
  const int64_t max_delay = TravelDelaySlots(out.distances.MaxAll());

  for (int64_t t = 0; t < total; ++t) {
    const int64_t slot = t % spd;
    const double hour = 6.0 + 18.0 * static_cast<double>(slot) / spd;
    const int64_t dow = (t / spd) % 7;
    const bool weekend = dow >= 5;
    out.data.slot_of_day[t] = slot;
    out.data.day_of_week[t] = dow;

    if (slot == 0) {
      for (int64_t i = 0; i < n; ++i) {
        day_scale[i] =
            std::exp(rng.Gaussian(0.0, config.day_noise_sigma));
        ar_state[i] = 0.0;
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      ar_state[i] = 0.8 * ar_state[i] +
                    rng.Gaussian(0.0, config.ar_noise_sigma);
    }

    Tensor lambda = Tensor::Zeros({n, n});
    float* lam = lambda.mutable_data();
    for (int64_t i = 0; i < n; ++i) {
      const double oi = MetroOriginProfile(out.area_types[i], hour, weekend) *
                        day_scale[i] * std::exp(ar_state[i]);
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        lam[i * n + j] = static_cast<float>(
            scale * gravity.flat(i * n + j) * oi *
            MetroAttractionProfile(out.area_types[j], hour, weekend) *
            PairModulation(hour, config.pair_phase_strength,
                           PairPhase(i, j, n)));
      }
    }

    // Sample trips, book tap-ins now and tap-outs after the travel delay.
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const int64_t trips = rng.Poisson(lam[i * n + j]);
        if (trips == 0) continue;
        values[(t * n + i) * 2 + 0] += static_cast<float>(trips);  // inflow
        const int64_t arrive =
            t + TravelDelaySlots(out.distances.flat(i * n + j));
        if (arrive < total) {
          values[(arrive * n + j) * 2 + 1] +=
              static_cast<float>(trips);  // outflow
        }
      }
    }

    if (config.keep_od_ground_truth) {
      out.od_ground_truth.push_back(std::move(lambda));
    }
  }
  (void)max_delay;

  // --- Failure injection ------------------------------------------------------
  if (config.expected_closures > 0.0) {
    const int64_t events = rng.Poisson(config.expected_closures);
    for (int64_t e = 0; e < events; ++e) {
      const int64_t station = rng.UniformInt(0, n - 1);
      const int64_t duration = rng.UniformInt(8, 32);  // 2-8 hours
      const int64_t first = rng.UniformInt(0, total - duration - 1);
      const int64_t last = first + duration;
      for (int64_t t = first; t <= last; ++t) {
        values[(t * n + station) * 2 + 0] = 0.0f;
        values[(t * n + station) * 2 + 1] = 0.0f;
      }
      out.closures.push_back({station, first, last});
    }
  }
  return out;
}

}  // namespace datagen
}  // namespace tgcrn
