// Copyright 2026 TGCRN Reproduction Authors
// CSV ingestion for user-provided datasets. The expected layout matches
// what the public traffic datasets ship as after preprocessing:
//
//   timestamp_index,slot_of_day,day_of_week,node0_f0,node0_f1,...,nodeN_fD
//
// i.e. one row per time step, three calendar columns, then num_nodes *
// num_features value columns in node-major order. A header line is
// optional (detected by a non-numeric first field). All failures are
// reported through Status - malformed rows name the line number.
#ifndef TGCRN_DATA_CSV_LOADER_H_
#define TGCRN_DATA_CSV_LOADER_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace tgcrn {
namespace data {

struct CsvLoadOptions {
  int64_t num_nodes = 0;
  int64_t num_features = 0;
  int64_t steps_per_day = 0;
};

// Parses the file at `path` into a SpatioTemporalData. Validates column
// counts, calendar ranges (slot in [0, steps_per_day), day in [0, 7)) and
// numeric parse failures.
Result<SpatioTemporalData> LoadCsv(const std::string& path,
                                   const CsvLoadOptions& options);

// Writes `data` in the same layout (useful for exporting simulator output
// so external tools can consume it, and for round-trip tests).
Status SaveCsv(const SpatioTemporalData& data, const std::string& path);

}  // namespace data
}  // namespace tgcrn

#endif  // TGCRN_DATA_CSV_LOADER_H_
