// Copyright 2026 TGCRN Reproduction Authors
#include "data/dataset.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tgcrn {
namespace data {

void StandardScaler::Fit(const Tensor& values, int64_t fit_steps) {
  TGCRN_CHECK_EQ(values.dim(), 3);
  TGCRN_CHECK_GT(fit_steps, 0);
  TGCRN_CHECK_LE(fit_steps, values.size(0));
  const int64_t n = values.size(1);
  const int64_t d = values.size(2);
  means_.assign(d, 0.0f);
  stds_.assign(d, 1.0f);
  const float* p = values.data();
  const int64_t per_channel = fit_steps * n;
  for (int64_t c = 0; c < d; ++c) {
    double sum = 0.0;
    for (int64_t t = 0; t < fit_steps; ++t) {
      for (int64_t i = 0; i < n; ++i) {
        sum += p[(t * n + i) * d + c];
      }
    }
    const double mean = sum / per_channel;
    double sq = 0.0;
    for (int64_t t = 0; t < fit_steps; ++t) {
      for (int64_t i = 0; i < n; ++i) {
        const double dv = p[(t * n + i) * d + c] - mean;
        sq += dv * dv;
      }
    }
    means_[c] = static_cast<float>(mean);
    stds_[c] = static_cast<float>(std::max(std::sqrt(sq / per_channel),
                                           1e-6));
  }
}

void StandardScaler::SetMoments(std::vector<float> means,
                                std::vector<float> stds) {
  TGCRN_CHECK(!means.empty());
  TGCRN_CHECK_EQ(means.size(), stds.size());
  means_ = std::move(means);
  stds_ = std::move(stds);
}

Tensor StandardScaler::Transform(const Tensor& values) const {
  const int64_t d = values.size(values.dim() - 1);
  TGCRN_CHECK_EQ(d, static_cast<int64_t>(means_.size()));
  Tensor out = values.Clone();
  float* p = out.mutable_data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = i % d;
    p[i] = (p[i] - means_[c]) / stds_[c];
  }
  return out;
}

Tensor StandardScaler::InverseTransform(const Tensor& values) const {
  const int64_t d = values.size(values.dim() - 1);
  TGCRN_CHECK_EQ(d, static_cast<int64_t>(means_.size()));
  Tensor out = values.Clone();
  float* p = out.mutable_data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = i % d;
    p[i] = p[i] * stds_[c] + means_[c];
  }
  return out;
}

ForecastDataset::ForecastDataset(SpatioTemporalData data, Options options)
    : data_(std::move(data)), options_(options) {
  const int64_t total = data_.num_steps();
  const int64_t window = options_.input_steps + options_.output_steps;
  TGCRN_CHECK_GT(total, window);
  TGCRN_CHECK_EQ(static_cast<int64_t>(data_.slot_of_day.size()), total);
  TGCRN_CHECK_EQ(static_cast<int64_t>(data_.day_of_week.size()), total);

  // Chronological boundaries in raw time steps.
  const auto train_end = static_cast<int64_t>(total * options_.train_fraction);
  const auto val_end = static_cast<int64_t>(
      total * (options_.train_fraction + options_.val_fraction));
  TGCRN_CHECK_GT(train_end, window);

  scaler_.Fit(data_.values, train_end);
  scaled_values_ = scaler_.Transform(data_.values);

  // A window starting at s spans [s, s+window). Windows are assigned to the
  // split containing their final step, so no test information leaks into
  // training (standard practice: splits share boundary history).
  for (int64_t s = 0; s + window <= total; ++s) {
    const int64_t last = s + window - 1;
    if (last < train_end) {
      train_starts_.push_back(s);
    } else if (last < val_end) {
      val_starts_.push_back(s);
    } else {
      test_starts_.push_back(s);
    }
  }
  TGCRN_CHECK(!train_starts_.empty());
  TGCRN_CHECK(!val_starts_.empty());
  TGCRN_CHECK(!test_starts_.empty());
}

Batch ForecastDataset::MakeBatch(Split split,
                                 const std::vector<int64_t>& sample_ids) const {
  TGCRN_TRACE_SCOPE("data.MakeBatch");
  static obs::Counter* batches =
      obs::Registry::Global().GetCounter("data.batches_assembled");
  static obs::Histogram* assembly_ns =
      obs::Registry::Global().GetHistogram("data.batch_assembly_ns");
  const auto assembly_start = std::chrono::steady_clock::now();
  const std::vector<int64_t>* starts = nullptr;
  switch (split) {
    case Split::kTrain:
      starts = &train_starts_;
      break;
    case Split::kVal:
      starts = &val_starts_;
      break;
    case Split::kTest:
      starts = &test_starts_;
      break;
  }
  const int64_t b = static_cast<int64_t>(sample_ids.size());
  const int64_t p = options_.input_steps;
  const int64_t q = options_.output_steps;
  const int64_t n = data_.num_nodes();
  const int64_t d = data_.num_features();

  Batch batch;
  batch.x = Tensor::Zeros({b, p, n, d});
  batch.y = Tensor::Zeros({b, q, n, d});
  batch.y_scaled = Tensor::Zeros({b, q, n, d});
  batch.x_slots.resize(b);
  batch.y_slots.resize(b);
  batch.x_days.resize(b);
  batch.y_days.resize(b);

  const float* scaled = scaled_values_.data();
  const float* raw = data_.values.data();
  float* bx = batch.x.mutable_data();
  float* by = batch.y.mutable_data();
  float* bys = batch.y_scaled.mutable_data();
  const int64_t step_span = n * d;

  for (int64_t i = 0; i < b; ++i) {
    TGCRN_CHECK_LT(sample_ids[i], static_cast<int64_t>(starts->size()));
    const int64_t s = (*starts)[sample_ids[i]];
    std::copy(scaled + s * step_span, scaled + (s + p) * step_span,
              bx + i * p * step_span);
    std::copy(raw + (s + p) * step_span, raw + (s + p + q) * step_span,
              by + i * q * step_span);
    std::copy(scaled + (s + p) * step_span,
              scaled + (s + p + q) * step_span, bys + i * q * step_span);
    for (int64_t t = 0; t < p; ++t) {
      batch.x_slots[i].push_back(data_.slot_of_day[s + t]);
      batch.x_days[i].push_back(data_.day_of_week[s + t]);
    }
    for (int64_t t = 0; t < q; ++t) {
      batch.y_slots[i].push_back(data_.slot_of_day[s + p + t]);
      batch.y_days[i].push_back(data_.day_of_week[s + p + t]);
    }
  }
  batches->Add(1);
  assembly_ns->Observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - assembly_start)
                           .count());
  return batch;
}

std::vector<std::vector<int64_t>> ForecastDataset::EpochBatches(
    Split split, int64_t batch_size, Rng* rng) const {
  int64_t count = 0;
  switch (split) {
    case Split::kTrain:
      count = NumTrainSamples();
      break;
    case Split::kVal:
      count = NumValSamples();
      break;
    case Split::kTest:
      count = NumTestSamples();
      break;
  }
  std::vector<int64_t> ids(count);
  for (int64_t i = 0; i < count; ++i) ids[i] = i;
  if (rng != nullptr) rng->Shuffle(&ids);
  std::vector<std::vector<int64_t>> batches;
  for (int64_t start = 0; start < count; start += batch_size) {
    const int64_t end = std::min(start + batch_size, count);
    batches.emplace_back(ids.begin() + start, ids.begin() + end);
  }
  return batches;
}

namespace {
// Trailer magic of the scaler footer; the byte count before it is
// derivable from the uint64 channel count that precedes it, so the
// footer can be located from the end of the file without parsing the
// parameter stream it follows.
constexpr char kScalerMagic[8] = {'T', 'G', 'C', 'R', 'N', 'S', 'C', 'L'};
constexpr size_t kScalerTrailerBytes = sizeof(uint64_t) + sizeof(kScalerMagic);
}  // namespace

Status AppendScalerFooter(const std::string& path,
                          const StandardScaler& scaler) {
  if (scaler.means().empty() ||
      scaler.means().size() != scaler.stds().size()) {
    return Status::FailedPrecondition("scaler is not fitted");
  }
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("cannot open " + path + " for append");
  const uint64_t d = scaler.means().size();
  out.write(reinterpret_cast<const char*>(scaler.means().data()),
            static_cast<std::streamsize>(d * sizeof(float)));
  out.write(reinterpret_cast<const char*>(scaler.stds().data()),
            static_cast<std::streamsize>(d * sizeof(float)));
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  out.write(kScalerMagic, sizeof(kScalerMagic));
  if (!out.good()) return Status::IOError("footer write failed for " + path);
  return Status::OK();
}

Status LoadScalerFooter(const std::string& path, StandardScaler* scaler) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path + " for reading");
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < static_cast<std::streamoff>(kScalerTrailerBytes)) {
    return Status::NotFound(path + " has no scaler footer");
  }
  in.seekg(size - static_cast<std::streamoff>(kScalerTrailerBytes));
  uint64_t d = 0;
  char magic[sizeof(kScalerMagic)];
  in.read(reinterpret_cast<char*>(&d), sizeof(d));
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kScalerMagic, sizeof(magic)) != 0) {
    return Status::NotFound(path + " has no scaler footer");
  }
  const uint64_t moment_bytes = 2 * d * sizeof(float);
  if (d == 0 ||
      static_cast<uint64_t>(size) < kScalerTrailerBytes + moment_bytes) {
    return Status::InvalidArgument("corrupt scaler footer in " + path);
  }
  in.seekg(size - static_cast<std::streamoff>(kScalerTrailerBytes +
                                              moment_bytes));
  std::vector<float> means(d);
  std::vector<float> stds(d);
  in.read(reinterpret_cast<char*>(means.data()),
          static_cast<std::streamsize>(d * sizeof(float)));
  in.read(reinterpret_cast<char*>(stds.data()),
          static_cast<std::streamsize>(d * sizeof(float)));
  if (!in.good()) return Status::IOError("truncated scaler footer " + path);
  for (float s : stds) {
    if (!(s > 0.0f)) {
      return Status::InvalidArgument("corrupt scaler footer in " + path +
                                     " (non-positive std)");
    }
  }
  scaler->SetMoments(std::move(means), std::move(stds));
  return Status::OK();
}

}  // namespace data
}  // namespace tgcrn
