// Copyright 2026 TGCRN Reproduction Authors
#include "data/csv_loader.h"

#include <charconv>
#include <fstream>
#include <vector>

namespace tgcrn {
namespace data {

namespace {

// Splits a CSV line on commas (no quoting: the format is purely numeric).
std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

bool ParseDouble(const std::string& field, double* out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  // Skip leading whitespace (std::from_chars does not).
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  const auto result = std::from_chars(begin, end, *out);
  return result.ec == std::errc() && result.ptr == end;
}

}  // namespace

Result<SpatioTemporalData> LoadCsv(const std::string& path,
                                   const CsvLoadOptions& options) {
  if (options.num_nodes <= 0 || options.num_features <= 0 ||
      options.steps_per_day <= 0) {
    return Status::InvalidArgument(
        "CsvLoadOptions must set num_nodes, num_features and "
        "steps_per_day");
  }
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  const int64_t value_columns = options.num_nodes * options.num_features;
  const size_t expected_fields = static_cast<size_t>(3 + value_columns);

  std::vector<float> values;
  std::vector<int64_t> slots, days;
  std::string line;
  int64_t line_number = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = SplitLine(line);
    if (first_data_line) {
      first_data_line = false;
      double probe = 0.0;
      if (!ParseDouble(fields[0], &probe)) continue;  // header line
    }
    if (fields.size() != expected_fields) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": expected " +
          std::to_string(expected_fields) + " fields, got " +
          std::to_string(fields.size()));
    }
    double slot = 0, day = 0;
    if (!ParseDouble(fields[1], &slot) || !ParseDouble(fields[2], &day)) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) +
          ": unparsable calendar fields");
    }
    if (slot < 0 || slot >= options.steps_per_day) {
      return Status::OutOfRange(
          path + ":" + std::to_string(line_number) + ": slot_of_day " +
          std::to_string(static_cast<int64_t>(slot)) + " outside [0, " +
          std::to_string(options.steps_per_day) + ")");
    }
    if (day < 0 || day >= 7) {
      return Status::OutOfRange(path + ":" + std::to_string(line_number) +
                                ": day_of_week outside [0, 7)");
    }
    slots.push_back(static_cast<int64_t>(slot));
    days.push_back(static_cast<int64_t>(day));
    for (size_t f = 3; f < fields.size(); ++f) {
      double v = 0.0;
      if (!ParseDouble(fields[f], &v)) {
        return Status::InvalidArgument(
            path + ":" + std::to_string(line_number) + ": field " +
            std::to_string(f) + " is not numeric: '" + fields[f] + "'");
      }
      values.push_back(static_cast<float>(v));
    }
  }
  if (slots.empty()) {
    return Status::InvalidArgument(path + ": no data rows");
  }

  SpatioTemporalData data;
  const int64_t total = static_cast<int64_t>(slots.size());
  data.values = Tensor::FromVector(
      {total, options.num_nodes, options.num_features}, std::move(values));
  data.slot_of_day = std::move(slots);
  data.day_of_week = std::move(days);
  data.steps_per_day = options.steps_per_day;
  return data;
}

Status SaveCsv(const SpatioTemporalData& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "t,slot_of_day,day_of_week";
  for (int64_t i = 0; i < data.num_nodes(); ++i) {
    for (int64_t c = 0; c < data.num_features(); ++c) {
      out << ",node" << i << "_f" << c;
    }
  }
  out << "\n";
  const float* v = data.values.data();
  const int64_t per_step = data.num_nodes() * data.num_features();
  for (int64_t t = 0; t < data.num_steps(); ++t) {
    out << t << "," << data.slot_of_day[t] << "," << data.day_of_week[t];
    for (int64_t k = 0; k < per_step; ++k) {
      out << "," << v[t * per_step + k];
    }
    out << "\n";
  }
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace data
}  // namespace tgcrn
