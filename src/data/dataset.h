// Copyright 2026 TGCRN Reproduction Authors
// Dataset plumbing for spatio-temporal forecasting: raw series container,
// z-score scaling, sliding-window sample extraction, chronological
// train/val/test splitting and shuffled mini-batching. Mirrors the data
// handling of the paper (Section IV-A1): windows of P input and Q output
// steps over N nodes with d features, scaled by training-set statistics.
#ifndef TGCRN_DATA_DATASET_H_
#define TGCRN_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace data {

// A system of spatially correlated time series with calendar features.
struct SpatioTemporalData {
  Tensor values;                      // [T, N, d]
  std::vector<int64_t> slot_of_day;   // per step, in [0, steps_per_day)
  std::vector<int64_t> day_of_week;   // per step, 0 = Monday .. 6 = Sunday
  int64_t steps_per_day = 0;

  int64_t num_steps() const { return values.size(0); }
  int64_t num_nodes() const { return values.size(1); }
  int64_t num_features() const { return values.size(2); }
};

// Per-feature z-score scaler fitted on a [T, N, d] range.
class StandardScaler {
 public:
  // Fits mean/std per feature channel over steps [0, fit_steps) of `values`.
  void Fit(const Tensor& values, int64_t fit_steps);

  // Installs previously fitted moments (e.g. from a checkpoint's scaler
  // footer — see LoadScalerFooter). Sizes must match and be non-empty.
  void SetMoments(std::vector<float> means, std::vector<float> stds);

  // (x - mean) / std, per channel.
  Tensor Transform(const Tensor& values) const;
  // x * std + mean, per channel. Works on any shape ending in [.., d].
  Tensor InverseTransform(const Tensor& values) const;

  const std::vector<float>& means() const { return means_; }
  const std::vector<float>& stds() const { return stds_; }

 private:
  std::vector<float> means_;
  std::vector<float> stds_;
};

// Appends the fitted scaler to a parameter checkpoint file as a
// self-describing footer (docs/SERVING.md "Checkpoint format"):
//   float32 means[d], float32 stds[d], uint64 d, char magic[8]
// Readers that only consume the leading parameter stream
// (Module::LoadParameters) are unaffected by the trailing bytes.
Status AppendScalerFooter(const std::string& path,
                          const StandardScaler& scaler);

// Loads the scaler footer written by AppendScalerFooter. NotFound if the
// file carries no footer (pre-footer checkpoint), IOError/InvalidArgument
// on an unreadable or corrupt one; on success *scaler holds the persisted
// moments bitwise.
Status LoadScalerFooter(const std::string& path, StandardScaler* scaler);

// One mini-batch of forecasting samples.
struct Batch {
  Tensor x;                               // [B, P, N, d] scaled inputs
  Tensor y;                               // [B, Q, N, d] raw targets
  Tensor y_scaled;                        // [B, Q, N, d] scaled targets
  std::vector<std::vector<int64_t>> x_slots;  // [B][P] slot-of-day ids
  std::vector<std::vector<int64_t>> y_slots;  // [B][Q]
  std::vector<std::vector<int64_t>> x_days;   // [B][P] day-of-week
  std::vector<std::vector<int64_t>> y_days;   // [B][Q]

  int64_t batch_size() const { return x.size(0); }
};

// Chronological split + sliding windows + scaling, the standard recipe.
class ForecastDataset {
 public:
  struct Options {
    int64_t input_steps = 4;    // P
    int64_t output_steps = 4;   // Q
    double train_fraction = 0.7;
    double val_fraction = 0.1;  // remainder is test
  };

  ForecastDataset(SpatioTemporalData data, Options options);

  // Sample counts per split (a sample is a window start index).
  int64_t NumTrainSamples() const { return train_starts_.size(); }
  int64_t NumValSamples() const { return val_starts_.size(); }
  int64_t NumTestSamples() const { return test_starts_.size(); }

  // Assembles a batch from explicit window-start indices of a split.
  enum class Split { kTrain, kVal, kTest };
  Batch MakeBatch(Split split, const std::vector<int64_t>& sample_ids) const;

  // Returns shuffled batches of ids covering the whole split once.
  std::vector<std::vector<int64_t>> EpochBatches(Split split,
                                                 int64_t batch_size,
                                                 Rng* rng) const;

  const StandardScaler& scaler() const { return scaler_; }
  const SpatioTemporalData& data() const { return data_; }
  const Options& options() const { return options_; }
  // Number of distinct slot-of-day ids (the |T| of the paper's E_tau).
  int64_t steps_per_day() const { return data_.steps_per_day; }

 private:
  SpatioTemporalData data_;
  Options options_;
  StandardScaler scaler_;
  Tensor scaled_values_;  // [T, N, d]
  std::vector<int64_t> train_starts_;
  std::vector<int64_t> val_starts_;
  std::vector<int64_t> test_starts_;
};

}  // namespace data
}  // namespace tgcrn

#endif  // TGCRN_DATA_DATASET_H_
